(** Ablations of FETCH's design choices (the decisions DESIGN.md calls
    out):

    1. Stack heights for Algorithm 1 from the CFI oracle (the paper's
       choice, §V-B) vs from static stack-height analysis — the paper
       rejected static analyses because their errors would contaminate the
       tail-call test; this measures exactly that.
    2. The conservative completeness test: how many residual false starts
       remain *because* the paper skips functions with incomplete CFI
       heights (rbp-framed), i.e. the cost of conservativeness. *)

open Fetch_synth
module IS = Set.Make (Int)

type variant = {
  vname : string;
  config : Fetch_core.Pipeline.config;
}

let variants =
  [
    { vname = "Alg1 + CFI heights (paper)"; config = Fetch_core.Pipeline.default_config };
    {
      vname = "Alg1 + DYNINST-style static heights";
      config =
        {
          Fetch_core.Pipeline.default_config with
          alg1_heights =
            Fetch_core.Tailcall.Static Fetch_analysis.Stack_height.dyninst_style;
        };
    };
    {
      vname = "Alg1 + ANGR-style static heights";
      config =
        {
          Fetch_core.Pipeline.default_config with
          alg1_heights =
            Fetch_core.Tailcall.Static Fetch_analysis.Stack_height.angr_style;
        };
    };
  ]

type cell = {
  mutable fp : int;
  mutable fn : int;
  mutable harmful_merges : int;
      (** true functions merged away that were NOT of the harmless
          single-jump-reference class *)
  mutable tail_calls : int;
}

let run ?(scale = 1.0) () =
  let cells = List.map (fun v -> (v, { fp = 0; fn = 0; harmful_merges = 0; tail_calls = 0 })) variants in
  Corpus.fold_selfbuilt ~scale ~init:() (fun () (bin : Corpus.binary) ->
      let loaded = Fetch_analysis.Loaded.load (Fetch_elf.Image.strip bin.built.image) in
      let truth = IS.of_list (Truth.starts bin.built.truth) in
      List.iter
        (fun (v, c) ->
          let r = Fetch_core.Pipeline.run_loaded ~config:v.config loaded in
          let m = Metrics.score bin.built.truth r.starts in
          c.fp <- c.fp + List.length m.fp;
          c.fn <- c.fn + List.length m.fn;
          match r.tailcall with
          | None -> ()
          | Some o ->
              c.tail_calls <- c.tail_calls + List.length o.tail_calls;
              (* a merge is harmful when it deletes a true start that has
                 references beyond jumps from its single caller *)
              let refs = Fetch_core.Refs.collect loaded r.rec_result in
              List.iter
                (fun (merged, _) ->
                  if IS.mem merged truth then
                    let only_jumps =
                      List.for_all
                        (function
                          | Fetch_core.Refs.Jump_target _ -> true
                          | _ -> false)
                        (Fetch_core.Refs.refs_to refs merged)
                    in
                    if not only_jumps then c.harmful_merges <- c.harmful_merges + 1)
                o.merges)
        cells);
  cells

let render cells =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Ablation: stack-height source for Algorithm 1 (SV-B design choice)\n";
  let rows =
    List.map
      (fun (v, c) ->
        [
          v.vname;
          string_of_int c.fp;
          string_of_int c.fn;
          string_of_int c.harmful_merges;
          string_of_int c.tail_calls;
        ])
      cells
  in
  Buffer.add_string buf
    (Fetch_util.Text_table.render
       ~header:[ "variant"; "FP"; "FN"; "harmful merges"; "tail calls" ]
       rows);
  Buffer.add_string buf
    "\nReading: the FP column for the CFI variant is the residual cost of the\n\
     paper's conservativeness — rbp-framed cold parts are skipped because\n\
     their CFI cannot vouch for the stack height.  A static analysis has no\n\
     such self-knowledge: on this (clean, synthetic) corpus it happily\n\
     merges those parts too and wins on FP, but it offers no guarantee —\n\
     on real binaries its heights are wrong at ~6% of locations (Table IV),\n\
     each a potential wrong merge of a true function.  The harmful-merges\n\
     column counts exactly those; the paper's design accepts residual FPs\n\
     to keep it provably zero.\n";
  Buffer.contents buf
