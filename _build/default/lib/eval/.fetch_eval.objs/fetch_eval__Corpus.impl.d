lib/eval/corpus.ml: Fetch_synth Fetch_util Gen Hashtbl Link List Printf Profile
