lib/eval/exp_ablation.ml: Buffer Corpus Fetch_analysis Fetch_core Fetch_elf Fetch_synth Fetch_util Int List Metrics Set Truth
