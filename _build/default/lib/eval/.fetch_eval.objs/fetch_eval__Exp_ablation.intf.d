lib/eval/exp_ablation.mli: Fetch_core
