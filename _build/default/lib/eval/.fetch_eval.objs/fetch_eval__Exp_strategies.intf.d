lib/eval/exp_strategies.mli: Fetch_analysis Metrics
