lib/eval/exp_errors.ml: Corpus Fetch_analysis Fetch_core Fetch_elf Fetch_rop Fetch_synth Int List Metrics Printf Set String Truth
