lib/eval/exp_pe.mli:
