lib/eval/exp_errors.mli:
