lib/eval/exp_strategies.ml: Angr_model Buffer Corpus Fetch_analysis Fetch_baselines Fetch_core Fetch_elf Fetch_util Ghidra_model List Metrics Printf
