lib/eval/exp_heights.mli: Fetch_analysis Fetch_synth Hashtbl Metrics Profile Truth
