lib/eval/exp_tools.ml: Buffer Corpus Fetch_analysis Fetch_baselines Fetch_elf Fetch_synth Fetch_util Hashtbl List Metrics Printf Profile Sys Tools
