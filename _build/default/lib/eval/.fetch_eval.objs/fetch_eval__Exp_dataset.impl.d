lib/eval/exp_dataset.ml: Buffer Corpus Fetch_dwarf Fetch_elf Fetch_synth Fetch_util Hashtbl Int Link List Option Printf Set Truth
