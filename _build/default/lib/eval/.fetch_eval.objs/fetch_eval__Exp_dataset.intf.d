lib/eval/exp_dataset.mli:
