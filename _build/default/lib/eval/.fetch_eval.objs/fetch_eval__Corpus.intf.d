lib/eval/corpus.mli: Fetch_synth
