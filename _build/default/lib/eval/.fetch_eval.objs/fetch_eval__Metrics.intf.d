lib/eval/metrics.mli: Fetch_synth
