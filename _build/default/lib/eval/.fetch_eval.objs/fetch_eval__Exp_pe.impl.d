lib/eval/exp_pe.ml: Corpus Fetch_pe Fetch_synth List Printf String Truth
