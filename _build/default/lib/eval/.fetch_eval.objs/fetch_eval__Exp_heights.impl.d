lib/eval/exp_heights.ml: Buffer Corpus Fetch_analysis Fetch_dwarf Fetch_elf Fetch_synth Fetch_util Fetch_x86 Hashtbl List Metrics Printf Profile Truth
