lib/eval/exp_tools.mli: Fetch_synth Hashtbl Profile
