lib/eval/metrics.ml: Fetch_synth Int List Set Truth
