(** Language-Specific Data Area (the [.gcc_except_table] records): the
    per-function call-site tables the personality routine consults to find
    the landing pad for a PC during phase 2 of unwinding (Figure 2's
    "find the proper handler" step).

    Encoded in the Itanium C++ ABI layout GCC uses: a landing-pad base
    encoding (DW_EH_PE_omit = function start), a type-table encoding
    (omitted here — no typed catches needed for function detection), and
    a uleb128 call-site table.  All offsets are relative to the function
    start. *)

open Fetch_util

type call_site = {
  cs_start : int;  (** offset of the covered region's first byte *)
  cs_len : int;
  landing_pad : int;  (** offset of the landing pad; 0 = unwind through *)
  action : int;  (** 0 = cleanup only; >0 indexes the action table *)
}

type t = { call_sites : call_site list }

let pe_omit = 0xff
let pe_uleb128 = 0x01

let encode t =
  let buf = Byte_buf.create () in
  Byte_buf.u8 buf pe_omit;
  (* landing-pad base = function start *)
  Byte_buf.u8 buf pe_omit;
  (* no type table *)
  Byte_buf.u8 buf pe_uleb128;
  (* call-site table encoding *)
  let table = Byte_buf.create () in
  List.iter
    (fun cs ->
      Byte_buf.uleb128 table cs.cs_start;
      Byte_buf.uleb128 table cs.cs_len;
      Byte_buf.uleb128 table cs.landing_pad;
      Byte_buf.uleb128 table cs.action)
    t.call_sites;
  let body = Byte_buf.contents table in
  Byte_buf.uleb128 buf (String.length body);
  Byte_buf.string buf body;
  Byte_buf.contents buf

let decode data =
  let c = Byte_cursor.of_string data in
  try
    let lp_enc = Byte_cursor.u8 c in
    if lp_enc <> pe_omit then Error "unsupported landing-pad base encoding"
    else begin
      let ttype_enc = Byte_cursor.u8 c in
      if ttype_enc <> pe_omit then Error "unsupported type-table encoding"
      else begin
        let cs_enc = Byte_cursor.u8 c in
        if cs_enc <> pe_uleb128 then Error "unsupported call-site encoding"
        else begin
          let len = Byte_cursor.uleb128 c in
          let stop = Byte_cursor.pos c + len in
          let sites = ref [] in
          while Byte_cursor.pos c < stop do
            let cs_start = Byte_cursor.uleb128 c in
            let cs_len = Byte_cursor.uleb128 c in
            let landing_pad = Byte_cursor.uleb128 c in
            let action = Byte_cursor.uleb128 c in
            sites := { cs_start; cs_len; landing_pad; action } :: !sites
          done;
          Ok { call_sites = List.rev !sites }
        end
      end
    end
  with Byte_cursor.Out_of_bounds _ -> Error "truncated LSDA"

(** The call site covering code offset [off] (relative to the function
    start). *)
let site_for t ~off =
  List.find_opt
    (fun cs -> off >= cs.cs_start && off < cs.cs_start + cs.cs_len)
    t.call_sites
