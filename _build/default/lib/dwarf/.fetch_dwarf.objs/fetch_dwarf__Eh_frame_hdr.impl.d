lib/dwarf/eh_frame_hdr.ml: Array Byte_buf Byte_cursor Fetch_elf Fetch_util List Result
