lib/dwarf/unwind.ml: Cfa_table Height_oracle List Lsda
