lib/dwarf/lsda.mli:
