lib/dwarf/cfi.ml: Byte_buf Byte_cursor Fetch_util List Printf String
