lib/dwarf/height_oracle.mli: Cfa_table Eh_frame
