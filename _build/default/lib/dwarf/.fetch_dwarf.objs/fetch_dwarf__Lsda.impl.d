lib/dwarf/lsda.ml: Byte_buf Byte_cursor Fetch_util List String
