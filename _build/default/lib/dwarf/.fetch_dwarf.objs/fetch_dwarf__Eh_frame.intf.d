lib/dwarf/eh_frame.mli: Cfi Fetch_elf
