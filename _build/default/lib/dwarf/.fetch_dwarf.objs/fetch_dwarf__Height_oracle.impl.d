lib/dwarf/height_oracle.ml: Cfa_table Eh_frame Fetch_util Interval_map List
