lib/dwarf/cfa_table.mli: Eh_frame
