lib/dwarf/cfa_table.ml: Cfi Eh_frame List
