lib/dwarf/eh_frame_hdr.mli: Fetch_elf
