lib/dwarf/eh_frame.ml: Byte_buf Byte_cursor Bytes Cfi Fetch_elf Fetch_util Hashtbl Int64 List Printf String
