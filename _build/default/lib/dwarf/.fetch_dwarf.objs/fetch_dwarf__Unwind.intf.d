lib/dwarf/unwind.mli: Height_oracle Lsda
