lib/dwarf/cfi.mli: Fetch_util
