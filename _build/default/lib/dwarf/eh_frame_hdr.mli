(** The [.eh_frame_hdr] section: the sorted binary-search table the
    runtime unwinder uses to find the FDE for a PC in O(log n) (GNU
    [PT_GNU_EH_FRAME] segment contents). *)

type t = {
  addr : int;  (** virtual address of the section itself *)
  eh_frame_ptr : int;
  entries : (int * int) array;  (** (pc_begin, fde record address), sorted *)
}

(** [encode ~addr ~eh_frame_addr index] builds the section as loaded at
    [addr]; [index] pairs each FDE's [pc_begin] with its record address
    (from {!Eh_frame.encode_with_index}). *)
val encode : addr:int -> eh_frame_addr:int -> (int * int) list -> string

val decode : addr:int -> string -> (t, string) result

(** Decode the image's [.eh_frame_hdr], if present. *)
val of_image : Fetch_elf.Image.t -> (t option, string) result

(** Binary search: the FDE record address covering [pc] (the entry with
    the greatest [pc_begin <= pc]). *)
val search : t -> int -> int option
