(** Evaluation of CFI programs into unwinding-rule tables.

    Interpreting a CIE's initial instructions followed by an FDE's
    instructions yields one row per change point: at code offset [loc]
    the CFA is computed by [cfa] and each saved register by its rule.
    This is the information source FETCH uses as a stack-height oracle
    (§V-B) and the unwinder uses for tasks T2/T3 (§III-B). *)

type cfa_rule =
  | Cfa_reg_offset of int * int  (** CFA = reg + offset (DWARF number) *)
  | Cfa_expr  (** defined by a DWARF expression: opaque to the analyses *)

type reg_rule =
  | Same_value
  | Saved_at_cfa of int  (** stored at CFA + offset (bytes, unfactored) *)
  | In_register of int
  | Undefined
  | Rule_expr

type row = {
  loc : int;  (** code offset (bytes from pc_begin) where the row starts *)
  cfa : cfa_rule;
  regs : (int * reg_rule) list;  (** DWARF reg number -> rule *)
}

(** DWARF numbers of rsp (7) and rbp (6). *)
val dw_rsp : int

val dw_rbp : int

exception Unsupported of string

(** Interpret the CFI program; rows come back in increasing [loc] order,
    the first at [loc = 0].  Raises {!Unsupported} on rule combinations
    outside the DWARF subset compilers emit. *)
val rows : cie:Eh_frame.cie -> Eh_frame.fde -> row list

(** Row in effect at a code offset. *)
val row_at : row list -> int -> row option

(** Stack height at a code offset: bytes the stack has grown since
    function entry.  Defined only where the CFA is rsp-based (height =
    cfa_offset - 8; height 0 means rsp points right below the return
    address — the tail-call precondition of Algorithm 1). *)
val height_at : row list -> int -> int option

(** The paper's conservativeness test (§V-B): the CFI gives complete
    stack-height information iff the CFA starts as rsp + 8 and stays
    rsp-based with explicit offsets at every change point. *)
val complete_rsp_heights : row list -> bool
