(** The [.eh_frame_hdr] section: the sorted binary-search table the
    runtime unwinder uses to find the FDE for a PC in O(log n) (GNU
    [PT_GNU_EH_FRAME] segment contents).

    Layout (all per the LSB): version byte 1; three DW_EH_PE encoding
    bytes (eh_frame pointer, fde count, table entries); the pcrel pointer
    to [.eh_frame]; the entry count; then [(initial_pc, fde_address)]
    pairs, datarel-encoded (relative to the section start) and sorted by
    [initial_pc]. *)

open Fetch_util

type t = {
  addr : int;  (** virtual address of the section itself *)
  eh_frame_ptr : int;
  entries : (int * int) array;  (** (pc_begin, fde record address), sorted *)
}

let pe_pcrel_sdata4 = 0x1b
let pe_udata4 = 0x03
let pe_datarel_sdata4 = 0x3b

(** [encode ~addr ~eh_frame_addr index] builds the section as loaded at
    [addr]; [index] pairs each FDE's [pc_begin] with its record address
    (from {!Eh_frame.encode_with_index}). *)
let encode ~addr ~eh_frame_addr index =
  let buf = Byte_buf.create () in
  Byte_buf.u8 buf 1;
  (* version *)
  Byte_buf.u8 buf pe_pcrel_sdata4;
  Byte_buf.u8 buf pe_udata4;
  Byte_buf.u8 buf pe_datarel_sdata4;
  let field_addr = addr + Byte_buf.length buf in
  Byte_buf.i32 buf (eh_frame_addr - field_addr);
  let entries = List.sort compare index in
  Byte_buf.u32 buf (List.length entries);
  List.iter
    (fun (pc, fde_addr) ->
      Byte_buf.i32 buf (pc - addr);
      Byte_buf.i32 buf (fde_addr - addr))
    entries;
  Byte_buf.contents buf

let decode ~addr data =
  let c = Byte_cursor.of_string data in
  try
    let version = Byte_cursor.u8 c in
    if version <> 1 then Error "unsupported .eh_frame_hdr version"
    else begin
      let ptr_enc = Byte_cursor.u8 c in
      let count_enc = Byte_cursor.u8 c in
      let table_enc = Byte_cursor.u8 c in
      if ptr_enc <> pe_pcrel_sdata4 || count_enc <> pe_udata4
         || table_enc <> pe_datarel_sdata4
      then Error "unsupported .eh_frame_hdr encodings"
      else begin
        let field_addr = addr + Byte_cursor.pos c in
        let eh_frame_ptr = Byte_cursor.i32 c + field_addr in
        let count = Byte_cursor.u32 c in
        let entries =
          Array.init count (fun _ ->
              let pc = Byte_cursor.i32 c + addr in
              let fde = Byte_cursor.i32 c + addr in
              (pc, fde))
        in
        Ok { addr; eh_frame_ptr; entries }
      end
    end
  with Byte_cursor.Out_of_bounds _ -> Error "truncated .eh_frame_hdr"

let of_image (img : Fetch_elf.Image.t) =
  match Fetch_elf.Image.section img ".eh_frame_hdr" with
  | None -> Ok None
  | Some s -> Result.map (fun h -> Some h) (decode ~addr:s.addr s.data)

(** Binary search: the FDE record address covering [pc] per the table
    (i.e. the entry with the greatest [pc_begin <= pc]). *)
let search t pc =
  let n = Array.length t.entries in
  if n = 0 || pc < fst t.entries.(0) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if fst t.entries.(mid) <= pc then lo := mid else hi := mid - 1
    done;
    Some (snd t.entries.(!lo))
  end
