(** The [.eh_frame] section: a list of CIEs, each carrying FDEs (§III-C).

    Encoding follows the Linux Standard Base / GCC conventions: 32-bit
    length fields, CIE version 1 with augmentation ["zR"] (plus ["P"] for
    a personality routine and ["L"] for language-specific data areas in
    C++-style objects), pcrel+sdata4 pointer encoding, records padded to
    8 bytes with DW_CFA_nop, terminated by a zero-length entry. *)

type fde = {
  pc_begin : int;  (** virtual address of the first covered byte *)
  pc_range : int;  (** length of the covered region in bytes *)
  lsda : int option;  (** language-specific data area (C++ landing pads) *)
  instrs : Cfi.instr list;
}

type cie = {
  code_align : int;
  data_align : int;
  ra_reg : int;  (** return-address column; 16 on x86-64 *)
  personality : int option;  (** personality routine address *)
  initial : Cfi.instr list;  (** initial unwinding rules *)
  fdes : fde list;
}

val make_fde : ?lsda:int -> pc_begin:int -> pc_range:int -> Cfi.instr list -> fde

(** The CIE GCC emits for x86-64: CFA = rsp + 8, return address at
    CFA - 8. *)
val default_cie : ?personality:int -> ?fdes:fde list -> unit -> cie

(** All FDEs of all CIEs, in input order. *)
val all_fdes : cie list -> fde list

(** [encode ~addr cies] serializes the section as if loaded at virtual
    address [addr] (needed for pcrel pointer encodings). *)
val encode : addr:int -> cie list -> string

(** Like {!encode}, and also returns each FDE's [pc_begin] paired with the
    virtual address of its record — the contents of [.eh_frame_hdr]'s
    binary-search table. *)
val encode_with_index : addr:int -> cie list -> string * (int * int) list

(** Inverse of {!encode}; also accepts common GCC variations (version 3,
    personality/LSDA augmentations, absptr and 8-byte encodings). *)
val decode : addr:int -> string -> (cie list, string) result

(** Decode the [.eh_frame] section of an ELF image ([Ok []] if absent). *)
val of_image : Fetch_elf.Image.t -> (cie list, string) result
