(** Reference stack unwinder: the consumer-side semantics of [.eh_frame]
    (what libgcc's [_Unwind_RaiseException] does, §III-B).

    Used by the test suite to prove that CFI emitted by the synthetic
    compiler is semantically correct: given a simulated machine state at an
    arbitrary PC, the unwinder must recover the caller's PC/SP and every
    callee-saved register (tasks T1, T2 and T3). *)

type machine = {
  pc : int;
  regs : (int * int) list;  (** DWARF reg number -> value (rsp is reg 7) *)
  read_u64 : int -> int option;  (** memory read at a virtual address *)
}

type frame = {
  cfa : int;  (** canonical frame address of the interrupted frame *)
  return_address : int;
  caller_regs : (int * int) list;  (** register values in the caller *)
}

type error =
  | No_fde of int  (** PC not covered by any FDE: task T1 failed *)
  | Bad_memory of int
  | Unsupported_rule of string

let reg_value m r =
  match List.assoc_opt r m.regs with Some v -> Some v | None -> None

(** Unwind one frame.  Finds the FDE containing [m.pc] (T1), evaluates the
    CFI rows at that offset to compute the CFA and return address (T2), and
    applies each register rule to recover callee-saved registers (T3). *)
let step (oracle : Height_oracle.t) (m : machine) : (frame, error) result =
  match Height_oracle.entry_at oracle m.pc with
  | None -> Error (No_fde m.pc)
  | Some e -> (
      let off = m.pc - e.fde.pc_begin in
      match Cfa_table.row_at e.rows off with
      | None -> Error (Unsupported_rule "no CFI row at pc")
      | Some row -> (
          let cfa =
            match row.cfa with
            | Cfa_table.Cfa_reg_offset (r, o) -> (
                match reg_value m r with
                | Some v -> Ok (v + o)
                | None -> Error (Unsupported_rule "CFA base register unknown"))
            | Cfa_table.Cfa_expr -> Error (Unsupported_rule "CFA expression")
          in
          match cfa with
          | Error _ as err -> err
          | Ok cfa -> (
              let apply (r, rule) acc =
                match acc with
                | Error _ as err -> err
                | Ok regs -> (
                    match rule with
                    | Cfa_table.Saved_at_cfa o -> (
                        match m.read_u64 (cfa + o) with
                        | Some v -> Ok ((r, v) :: regs)
                        | None -> Error (Bad_memory (cfa + o)))
                    | Cfa_table.Same_value -> (
                        match reg_value m r with
                        | Some v -> Ok ((r, v) :: regs)
                        | None -> Ok regs)
                    | Cfa_table.In_register src -> (
                        match reg_value m src with
                        | Some v -> Ok ((r, v) :: regs)
                        | None -> Ok regs)
                    | Cfa_table.Undefined -> Ok regs
                    | Cfa_table.Rule_expr ->
                        Error (Unsupported_rule "register expression"))
              in
              (* Registers without a rule keep their value; rsp becomes the
                 CFA itself in the caller. *)
              let kept =
                List.filter (fun (r, _) -> not (List.mem_assoc r row.regs)) m.regs
              in
              match List.fold_right apply row.regs (Ok kept) with
              | Error _ as err -> err
              | Ok regs -> (
                  let regs =
                    (Cfa_table.dw_rsp, cfa)
                    :: List.remove_assoc Cfa_table.dw_rsp regs
                  in
                  (* Return address: rule for the RA column, else CFA - 8. *)
                  let ra_rule = List.assoc_opt 16 row.regs in
                  match ra_rule with
                  | Some (Cfa_table.Saved_at_cfa o) -> (
                      match m.read_u64 (cfa + o) with
                      | Some ra ->
                          Ok { cfa; return_address = ra; caller_regs = regs }
                      | None -> Error (Bad_memory (cfa + o)))
                  | Some _ -> Error (Unsupported_rule "unusual RA rule")
                  | None -> (
                      match m.read_u64 (cfa - 8) with
                      | Some ra ->
                          Ok { cfa; return_address = ra; caller_regs = regs }
                      | None -> Error (Bad_memory (cfa - 8)))))))

(** Repeatedly unwind until [stop] says the handler frame is reached or an
    error occurs; returns the visited frames, outermost last. *)
let walk oracle m ~max_frames ~stop =
  let rec go m acc n =
    if n >= max_frames then Ok (List.rev acc)
    else
      match step oracle m with
      | Error e -> Error (e, List.rev acc)
      | Ok f ->
          if stop f then Ok (List.rev (f :: acc))
          else
            go
              { m with pc = f.return_address; regs = f.caller_regs }
              (f :: acc) (n + 1)
  in
  go m [] 0

(** Phase-2 of Figure 2's workflow: starting from a throw at [m.pc], walk
    up the stack until a frame's LSDA carries a call site with a landing
    pad covering that frame's PC; [lsda_of] fetches and parses the LSDA at
    a given address (from [.gcc_except_table]).  Returns the frames
    unwound (innermost first) and the landing pad's absolute address, or
    the frames walked when no handler exists. *)
let find_handler (oracle : Height_oracle.t) ~lsda_of (m : machine) ~max_frames
    =
  let landing_pad_for pc =
    match Height_oracle.entry_at oracle pc with
    | Some e -> (
        match e.fde.lsda with
        | Some lsda_addr -> (
            match lsda_of lsda_addr with
            | Some lsda -> (
                match Lsda.site_for lsda ~off:(pc - e.fde.pc_begin) with
                | Some site when site.Lsda.landing_pad <> 0 ->
                    Some (e.fde.pc_begin + site.Lsda.landing_pad)
                | Some _ | None -> None)
            | None -> None)
        | None -> None)
    | None -> None
  in
  let rec go m acc n =
    match landing_pad_for m.pc with
    | Some lp -> Ok (List.rev acc, Some lp)
    | None ->
        if n >= max_frames then Ok (List.rev acc, None)
        else (
          match step oracle m with
          | Error e -> Error (e, List.rev acc)
          | Ok f ->
              (* the caller's relevant PC is the call site, one byte before
                 the return address *)
              go
                { m with pc = f.return_address - 1; regs = f.caller_regs }
                (f :: acc) (n + 1))
  in
  go m [] 0
