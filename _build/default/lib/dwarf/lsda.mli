(** Language-Specific Data Area (the [.gcc_except_table] records): the
    per-function call-site tables the personality routine consults to find
    the landing pad for a PC during phase 2 of unwinding (Figure 2's
    "find the proper handler" step). *)

type call_site = {
  cs_start : int;  (** offset of the covered region's first byte *)
  cs_len : int;
  landing_pad : int;  (** offset of the landing pad; 0 = unwind through *)
  action : int;  (** 0 = cleanup only; >0 indexes the action table *)
}

type t = { call_sites : call_site list }

(** Itanium-ABI layout with landing-pad base = function start and no type
    table; offsets relative to the function start. *)
val encode : t -> string

val decode : string -> (t, string) result

(** The call site covering a code offset (relative to the function
    start). *)
val site_for : t -> off:int -> call_site option
