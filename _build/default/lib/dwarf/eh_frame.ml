(** The [.eh_frame] section: a list of CIEs, each carrying FDEs (§III-C).

    Encoding follows the Linux Standard Base / GCC conventions: 32-bit
    length fields, CIE version 1 with augmentation ["zR"] (plus ["P"] for
    a personality routine and ["L"] for language-specific data areas in
    C++-style objects), pcrel+sdata4 pointer encoding, records padded to
    8 bytes with DW_CFA_nop, terminated by a zero-length entry. *)

open Fetch_util

type fde = {
  pc_begin : int;  (** virtual address of the first covered byte *)
  pc_range : int;  (** length of the covered region in bytes *)
  lsda : int option;  (** language-specific data area (C++ landing pads) *)
  instrs : Cfi.instr list;
}

type cie = {
  code_align : int;
  data_align : int;
  ra_reg : int;  (** return-address column; 16 on x86-64 *)
  personality : int option;  (** personality routine address *)
  initial : Cfi.instr list;  (** initial unwinding rules *)
  fdes : fde list;
}

let make_fde ?lsda ~pc_begin ~pc_range instrs = { pc_begin; pc_range; lsda; instrs }

(** The CIE GCC emits for x86-64: CFA = rsp + 8, return address at CFA-8. *)
let default_cie ?personality ?(fdes = []) () =
  {
    code_align = 1;
    data_align = -8;
    ra_reg = 16;
    personality;
    initial = [ Cfi.Def_cfa (7, 8); Cfi.Offset (16, 1) ];
    fdes;
  }

let all_fdes cies = List.concat_map (fun c -> c.fdes) cies

(* DW_EH_PE pointer encodings we support. *)
let pe_pcrel_sdata4 = 0x1b

(** Serialize the section as if loaded at [addr]; also returns, for every
    FDE, its [pc_begin] and the virtual address of its record (what
    [.eh_frame_hdr]'s search table stores). *)
let encode_with_index ~addr cies =
  let buf = Byte_buf.create ~capacity:4096 () in
  let index = ref [] in
  let encode_instrs instrs =
    let b = Byte_buf.create () in
    List.iter (Cfi.encode b) instrs;
    b
  in
  (* Emit one record (CIE or FDE); [body] writes everything after the length
     and id fields.  Records are padded to 8 bytes with DW_CFA_nop. *)
  let record ~id body =
    let len_at = Byte_buf.length buf in
    Byte_buf.u32 buf 0;
    (* placeholder *)
    Byte_buf.u32 buf id;
    body ();
    (* pad so that total record size is a multiple of 8 *)
    while (Byte_buf.length buf - len_at) mod 8 <> 0 do
      Byte_buf.u8 buf 0x00
    done;
    Byte_buf.patch_u32 buf ~at:len_at (Byte_buf.length buf - len_at - 4)
  in
  List.iter
    (fun cie ->
      let with_lsda = List.exists (fun f -> f.lsda <> None) cie.fdes in
      let cie_start = Byte_buf.length buf in
      record ~id:0 (fun () ->
          Byte_buf.u8 buf 1;
          (* version *)
          let aug =
            "z"
            ^ (if cie.personality <> None then "P" else "")
            ^ (if with_lsda then "L" else "")
            ^ "R"
          in
          Byte_buf.cstring buf aug;
          Byte_buf.uleb128 buf cie.code_align;
          Byte_buf.sleb128 buf cie.data_align;
          Byte_buf.uleb128 buf cie.ra_reg;
          (* augmentation data: P (enc + pointer), L (enc), R (enc) *)
          let aug_len =
            (if cie.personality <> None then 5 else 0)
            + (if with_lsda then 1 else 0)
            + 1
          in
          Byte_buf.uleb128 buf aug_len;
          (match cie.personality with
          | Some p ->
              Byte_buf.u8 buf pe_pcrel_sdata4;
              let field_addr = addr + Byte_buf.length buf in
              Byte_buf.i32 buf (p - field_addr)
          | None -> ());
          if with_lsda then Byte_buf.u8 buf pe_pcrel_sdata4;
          Byte_buf.u8 buf pe_pcrel_sdata4;
          Byte_buf.bytes buf
            (Bytes.of_string (Byte_buf.contents (encode_instrs cie.initial))));
      List.iter
        (fun fde ->
          let len_at = Byte_buf.length buf in
          index := (fde.pc_begin, addr + len_at) :: !index;
          Byte_buf.u32 buf 0;
          (* CIE pointer: distance from this field back to the CIE start *)
          Byte_buf.u32 buf (Byte_buf.length buf - cie_start);
          (* pc_begin, pcrel sdata4 relative to the field's own address *)
          let field_addr = addr + Byte_buf.length buf in
          Byte_buf.i32 buf (fde.pc_begin - field_addr);
          Byte_buf.i32 buf fde.pc_range;
          (* augmentation data: the LSDA pointer when the CIE declares L *)
          if with_lsda then begin
            Byte_buf.uleb128 buf 4;
            let lsda_field = addr + Byte_buf.length buf in
            match fde.lsda with
            | Some l -> Byte_buf.i32 buf (l - lsda_field)
            | None -> Byte_buf.i32 buf (0 - lsda_field) (* 0 = no LSDA *)
          end
          else Byte_buf.uleb128 buf 0;
          Byte_buf.bytes buf
            (Bytes.of_string (Byte_buf.contents (encode_instrs fde.instrs)));
          while (Byte_buf.length buf - len_at) mod 8 <> 0 do
            Byte_buf.u8 buf 0x00
          done;
          Byte_buf.patch_u32 buf ~at:len_at (Byte_buf.length buf - len_at - 4))
        cie.fdes)
    cies;
  (* terminator *)
  Byte_buf.u32 buf 0;
  (Byte_buf.contents buf, List.rev !index)

let encode ~addr cies = fst (encode_with_index ~addr cies)

type raw_cie = {
  rc_code_align : int;
  rc_data_align : int;
  rc_ra : int;
  rc_enc : int;
  rc_lsda_enc : int option;
  rc_personality : int option;
  rc_initial : Cfi.instr list;
}

let decode ~addr data =
  let c = Byte_cursor.of_string data in
  let cies : (int, raw_cie) Hashtbl.t = Hashtbl.create 8 in
  (* Preserve CIE grouping in input order. *)
  let order : int list ref = ref [] in
  let grouped : (int, fde list) Hashtbl.t = Hashtbl.create 8 in
  let read_encoded enc =
    let field_addr = addr + Byte_cursor.pos c in
    let v =
      match enc land 0x0f with
      | 0x0b (* sdata4 *) | 0x03 (* udata4 *) -> Byte_cursor.i32 c
      | 0x0c | 0x04 | 0x00 -> Int64.to_int (Byte_cursor.i64 c)
      | _ -> failwith "unsupported pointer encoding"
    in
    match enc land 0x70 with
    | 0x10 (* pcrel *) -> v + field_addr
    | 0x00 -> v
    | _ -> failwith "unsupported pointer application"
  in
  try
    let continue = ref true in
    while !continue && Byte_cursor.remaining c >= 4 do
      let rec_start = Byte_cursor.pos c in
      let len = Byte_cursor.u32 c in
      if len = 0 then continue := false
      else if len = 0xffffffff then failwith "64-bit DWARF records unsupported"
      else begin
        let body_end = Byte_cursor.pos c + len in
        let id_at = Byte_cursor.pos c in
        let id = Byte_cursor.u32 c in
        if id = 0 then begin
          (* CIE *)
          let version = Byte_cursor.u8 c in
          if version <> 1 && version <> 3 then failwith "unsupported CIE version";
          let aug = Byte_cursor.cstring c in
          let code_align = Byte_cursor.uleb128 c in
          let data_align = Byte_cursor.sleb128 c in
          let ra = Byte_cursor.uleb128 c in
          let enc = ref 0x00 in
          let lsda_enc = ref None in
          let personality = ref None in
          if String.length aug > 0 && aug.[0] = 'z' then begin
            let aug_len = Byte_cursor.uleb128 c in
            let aug_end = Byte_cursor.pos c + aug_len in
            String.iter
              (function
                | 'z' -> ()
                | 'R' -> enc := Byte_cursor.u8 c
                | 'P' ->
                    let penc = Byte_cursor.u8 c in
                    personality := Some (read_encoded penc)
                | 'L' -> lsda_enc := Some (Byte_cursor.u8 c)
                | ch -> failwith (Printf.sprintf "unknown augmentation %c" ch))
              aug;
            Byte_cursor.seek c aug_end
          end;
          let instr_bytes = Byte_cursor.string c (body_end - Byte_cursor.pos c) in
          let initial = Cfi.decode_all (Byte_cursor.of_string instr_bytes) in
          Hashtbl.replace cies rec_start
            { rc_code_align = code_align; rc_data_align = data_align;
              rc_ra = ra; rc_enc = !enc; rc_lsda_enc = !lsda_enc;
              rc_personality = !personality; rc_initial = initial };
          if not (List.mem rec_start !order) then order := rec_start :: !order;
          if not (Hashtbl.mem grouped rec_start) then Hashtbl.replace grouped rec_start []
        end
        else begin
          (* FDE: id is the distance back from the id field to its CIE. *)
          let cie_off = id_at - id in
          let raw =
            match Hashtbl.find_opt cies cie_off with
            | Some r -> r
            | None -> failwith "FDE references unknown CIE"
          in
          let pc_begin = read_encoded raw.rc_enc in
          (* pc_range is always an absolute size, same width as pc_begin *)
          let pc_range =
            match raw.rc_enc land 0x0f with
            | 0x0b | 0x03 -> Byte_cursor.i32 c
            | _ -> Int64.to_int (Byte_cursor.i64 c)
          in
          let aug_len = Byte_cursor.uleb128 c in
          let aug_end = Byte_cursor.pos c + aug_len in
          let lsda =
            match raw.rc_lsda_enc with
            | Some enc when aug_len > 0 ->
                let v = read_encoded enc in
                (* encoders write a pointer to 0 to mean "no LSDA" *)
                if v = 0 then None else Some v
            | _ -> None
          in
          Byte_cursor.seek c aug_end;
          let instr_bytes = Byte_cursor.string c (body_end - Byte_cursor.pos c) in
          let instrs = Cfi.decode_all (Byte_cursor.of_string instr_bytes) in
          let prev = try Hashtbl.find grouped cie_off with Not_found -> [] in
          Hashtbl.replace grouped cie_off
            ({ pc_begin; pc_range; lsda; instrs } :: prev)
        end;
        Byte_cursor.seek c body_end
      end
    done;
    let result =
      List.rev_map
        (fun off ->
          let raw = Hashtbl.find cies off in
          {
            code_align = raw.rc_code_align;
            data_align = raw.rc_data_align;
            ra_reg = raw.rc_ra;
            personality = raw.rc_personality;
            initial = raw.rc_initial;
            fdes = List.rev (Hashtbl.find grouped off);
          })
        !order
    in
    Ok result
  with
  | Failure msg -> Error msg
  | Byte_cursor.Out_of_bounds _ -> Error "truncated .eh_frame"

(** Decode the [.eh_frame] section of an ELF image, if present. *)
let of_image (img : Fetch_elf.Image.t) =
  match Fetch_elf.Image.section img ".eh_frame" with
  | None -> Ok []
  | Some s -> decode ~addr:s.addr s.data
