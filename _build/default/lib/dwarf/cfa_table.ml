(** Evaluation of CFI programs into unwinding-rule tables.

    Interpreting a CIE's initial instructions followed by an FDE's
    instructions yields one row per change point: at code offset [loc] the
    CFA is computed by [cfa] and each saved register by its rule.  This is
    the information source FETCH uses as a stack-height oracle (§V-B) and
    the unwinder uses for tasks T2/T3 (§III-B). *)

type cfa_rule =
  | Cfa_reg_offset of int * int  (** CFA = reg + offset (DWARF reg number) *)
  | Cfa_expr  (** defined by a DWARF expression: opaque to the analyses *)

type reg_rule =
  | Same_value
  | Saved_at_cfa of int  (** stored at CFA + offset (bytes, unfactored) *)
  | In_register of int
  | Undefined
  | Rule_expr

type row = {
  loc : int;  (** code offset (bytes from pc_begin) where the row starts *)
  cfa : cfa_rule;
  regs : (int * reg_rule) list;  (** DWARF reg number -> rule *)
}

let dw_rsp = 7
let dw_rbp = 6

type state = {
  mutable cfa : cfa_rule;
  mutable regs : (int * reg_rule) list;
}

exception Unsupported of string

(** [rows ~cie fde] interprets the CFI program; rows come back in
    increasing [loc] order, the first at [loc = 0]. *)
let rows ~(cie : Eh_frame.cie) (fde : Eh_frame.fde) =
  let st = { cfa = Cfa_expr; regs = [] } in
  let initial_regs = ref [] in
  let stack = ref [] in
  let out = ref [] in
  let loc = ref 0 in
  let snapshot () = { loc = !loc; cfa = st.cfa; regs = st.regs } in
  let emit () =
    (* Replace any previous row at the same loc. *)
    match !out with
    | r :: rest when r.loc = !loc -> out := snapshot () :: rest
    | _ -> out := snapshot () :: !out
  in
  let set_reg r rule = st.regs <- (r, rule) :: List.remove_assoc r st.regs in
  let apply in_initial i =
    (match i with
    | Cfi.Advance_loc d -> loc := !loc + (d * cie.code_align)
    | Cfi.Def_cfa (r, o) -> st.cfa <- Cfa_reg_offset (r, o)
    | Cfi.Def_cfa_register r -> (
        match st.cfa with
        | Cfa_reg_offset (_, o) -> st.cfa <- Cfa_reg_offset (r, o)
        | Cfa_expr -> raise (Unsupported "def_cfa_register over expression"))
    | Cfi.Def_cfa_offset o -> (
        match st.cfa with
        | Cfa_reg_offset (r, _) -> st.cfa <- Cfa_reg_offset (r, o)
        | Cfa_expr -> raise (Unsupported "def_cfa_offset over expression"))
    | Cfi.Offset (r, fo) -> set_reg r (Saved_at_cfa (fo * cie.data_align))
    | Cfi.Restore r ->
        let rule =
          match List.assoc_opt r !initial_regs with
          | Some rl -> rl
          | None -> Same_value
        in
        set_reg r rule
    | Cfi.Same_value r -> set_reg r Same_value
    | Cfi.Undefined r -> set_reg r Undefined
    | Cfi.Register (a, b) -> set_reg a (In_register b)
    | Cfi.Remember_state -> stack := (st.cfa, st.regs) :: !stack
    | Cfi.Restore_state -> (
        match !stack with
        | (cfa, regs) :: rest ->
            st.cfa <- cfa;
            st.regs <- regs;
            stack := rest
        | [] -> raise (Unsupported "restore_state with empty stack"))
    | Cfi.Def_cfa_expression _ -> st.cfa <- Cfa_expr
    | Cfi.Expression (r, _) -> set_reg r Rule_expr
    | Cfi.Nop -> ());
    match i with
    | Cfi.Advance_loc _ | Cfi.Nop -> ()
    | _ -> if not in_initial then emit ()
  in
  List.iter (apply true) cie.initial;
  initial_regs := st.regs;
  emit ();
  List.iter (apply false) fde.instrs;
  List.rev !out

(** Row in effect at code offset [off]. *)
let row_at rows off =
  let rec go best = function
    | [] -> best
    | r :: rest -> if r.loc <= off then go (Some r) rest else best
  in
  go None rows

(** Stack height at code offset [off]: the number of bytes the stack has
    grown since function entry.  Defined only when the CFA is rsp-based at
    that point (height = cfa_offset - 8: at entry CFA = rsp + 8, height 0;
    height 0 means rsp points right below the return address, the tail-call
    precondition of Algorithm 1). *)
let height_at rows off =
  match row_at rows off with
  | Some { cfa = Cfa_reg_offset (r, o); _ } when r = dw_rsp -> Some (o - 8)
  | Some _ | None -> None

(** The paper's conservativeness test (§V-B): the CFI gives complete stack
    height information iff the CFA is always represented via rsp, starts as
    rsp + 8, and every change point carries an explicit offset (i.e. no row
    is rbp-based or expression-based). *)
let complete_rsp_heights (rows : row list) =
  match rows with
  | [] -> false
  | first :: _ ->
      (match first.cfa with
      | Cfa_reg_offset (r, 8) when r = dw_rsp -> true
      | Cfa_reg_offset _ | Cfa_expr -> false)
      && List.for_all
           (fun (r : row) ->
             match r.cfa with
             | Cfa_reg_offset (reg, _) -> reg = dw_rsp
             | Cfa_expr -> false)
           rows
