(** Reference stack unwinder: the consumer-side semantics of [.eh_frame]
    (what libgcc's [_Unwind_RaiseException] does, §III-B).

    Used by the test suite and examples to prove that CFI emitted by the
    synthetic compiler is semantically correct: given a simulated machine
    state at an arbitrary PC, the unwinder must recover the caller's
    PC/SP and every callee-saved register (tasks T1, T2 and T3). *)

type machine = {
  pc : int;
  regs : (int * int) list;  (** DWARF reg number -> value (rsp is 7) *)
  read_u64 : int -> int option;  (** memory read at a virtual address *)
}

type frame = {
  cfa : int;  (** canonical frame address of the interrupted frame *)
  return_address : int;
  caller_regs : (int * int) list;  (** register values in the caller *)
}

type error =
  | No_fde of int  (** PC not covered by any FDE: task T1 failed *)
  | Bad_memory of int
  | Unsupported_rule of string

(** Unwind one frame: find the FDE containing [pc] (T1), compute the CFA
    and return address (T2), apply each register rule (T3). *)
val step : Height_oracle.t -> machine -> (frame, error) result

(** Repeatedly unwind until [stop] accepts a frame or [max_frames] is
    reached; returns the visited frames, innermost first. *)
val walk :
  Height_oracle.t ->
  machine ->
  max_frames:int ->
  stop:(frame -> bool) ->
  (frame list, error * frame list) result

(** Phase-2 of Figure 2's workflow: starting from a throw at the machine's
    PC, walk up the stack until a frame's LSDA carries a call site with a
    landing pad covering that frame's PC; [lsda_of] fetches and parses the
    LSDA at a given address.  Returns the frames unwound (innermost first)
    and the landing pad's absolute address ([None] when no handler
    exists within [max_frames]). *)
val find_handler :
  Height_oracle.t ->
  lsda_of:(int -> Lsda.t option) ->
  machine ->
  max_frames:int ->
  (frame list * int option, error * frame list) result
