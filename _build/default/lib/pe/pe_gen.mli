(** Repackage a synthetic binary as a PE32+ image with an exception
    directory, following the x64 Windows unwind ABI's coverage rule:
    non-leaf functions get RUNTIME_FUNCTION + UNWIND_INFO records, leaf
    functions are exempt — the reason the paper's §VII-B study sees
    "at least 70%" coverage rather than ~100%.  Non-contiguous functions
    get one record per part. *)

val image_base : int

(** Unwind codes equivalent to a function's prologue shape. *)
val unwind_info_of : Fetch_synth.Ir.func -> Unwind_info.t

(** Does the ABI require unwind data for this function? *)
val needs_pdata : Fetch_synth.Truth.fn_truth -> bool

val of_built : Fetch_synth.Link.built -> Image.t
