(** PE32+ encoder: a well-formed minimal x64 PE executable — DOS stub, PE
    signature, COFF header, optional header with the exception data
    directory pointing at [.pdata], section table, raw section data. *)

open Fetch_util

let file_alignment = 0x200
let section_alignment = 0x1000

let align v a = if v mod a = 0 then v else v + (a - (v mod a))

let encode (img : Image.t) =
  let nsections = List.length img.sections in
  (* Build .pdata bytes (12 bytes per RUNTIME_FUNCTION, sorted). *)
  let pdata_bytes =
    let b = Byte_buf.create () in
    List.iter
      (fun (rf : Image.runtime_function) ->
        Byte_buf.u32 b rf.begin_rva;
        Byte_buf.u32 b rf.end_rva;
        Byte_buf.u32 b rf.unwind_rva)
      (List.sort
         (fun (a : Image.runtime_function) b -> compare a.begin_rva b.begin_rva)
         img.pdata);
    Byte_buf.contents b
  in
  let sections =
    img.sections
    @
    if img.pdata = [] then []
    else begin
      let max_rva =
        List.fold_left
          (fun acc (s : Image.section) ->
            max acc (s.rva + String.length s.data))
          0x1000 img.sections
      in
      [
        {
          Image.pname = ".pdata";
          rva = align max_rva section_alignment;
          data = pdata_bytes;
          characteristics = Image.scn_initialized_data lor Image.scn_mem_read;
        };
      ]
    end
  in
  let nsections = nsections + if img.pdata = [] then 0 else 1 in
  (* Header layout: DOS header (64) + PE sig (4) + COFF (20) + optional
     header (240) + section table (40 each). *)
  let headers_size = 64 + 4 + 20 + 240 + (40 * nsections) in
  let headers_size_aligned = align headers_size file_alignment in
  (* File offsets for raw data. *)
  let placed =
    let off = ref headers_size_aligned in
    List.map
      (fun (s : Image.section) ->
        let o = !off in
        off := align (!off + String.length s.data) file_alignment;
        (s, o))
      sections
  in
  let size_of_image =
    align
      (List.fold_left
         (fun acc (s : Image.section) -> max acc (s.rva + String.length s.data))
         section_alignment sections)
      section_alignment
  in
  let buf = Byte_buf.create ~capacity:4096 () in
  (* DOS header: "MZ", e_lfanew = 64. *)
  Byte_buf.string buf "MZ";
  Byte_buf.fill buf ~count:58 ~byte:0;
  Byte_buf.u32 buf 64;
  (* PE signature *)
  Byte_buf.string buf "PE\000\000";
  (* COFF header *)
  Byte_buf.u16 buf 0x8664;
  (* machine: x86-64 *)
  Byte_buf.u16 buf nsections;
  Byte_buf.u32 buf 0;
  (* timestamp *)
  Byte_buf.u32 buf 0;
  (* symbol table ptr *)
  Byte_buf.u32 buf 0;
  (* symbol count *)
  Byte_buf.u16 buf 240;
  (* optional header size *)
  Byte_buf.u16 buf 0x22;
  (* characteristics: executable, large-address-aware *)
  (* Optional header (PE32+) *)
  let opt_start = Byte_buf.length buf in
  Byte_buf.u16 buf 0x20b;
  (* magic *)
  Byte_buf.u8 buf 14;
  Byte_buf.u8 buf 0;
  (* linker version *)
  Byte_buf.u32 buf 0;
  Byte_buf.u32 buf 0;
  Byte_buf.u32 buf 0;
  (* code/data sizes *)
  Byte_buf.u32 buf img.entry_rva;
  Byte_buf.u32 buf 0x1000;
  (* base of code *)
  Byte_buf.u64 buf img.image_base;
  Byte_buf.u32 buf section_alignment;
  Byte_buf.u32 buf file_alignment;
  Byte_buf.u16 buf 6;
  Byte_buf.u16 buf 0;
  (* OS version *)
  Byte_buf.u16 buf 0;
  Byte_buf.u16 buf 0;
  (* image version *)
  Byte_buf.u16 buf 6;
  Byte_buf.u16 buf 0;
  (* subsystem version *)
  Byte_buf.u32 buf 0;
  (* win32 version *)
  Byte_buf.u32 buf size_of_image;
  Byte_buf.u32 buf headers_size_aligned;
  Byte_buf.u32 buf 0;
  (* checksum *)
  Byte_buf.u16 buf 3;
  (* subsystem: console *)
  Byte_buf.u16 buf 0x8160;
  (* dll characteristics *)
  Byte_buf.u64 buf 0x100000;
  Byte_buf.u64 buf 0x1000;
  Byte_buf.u64 buf 0x100000;
  Byte_buf.u64 buf 0x1000;
  (* stack/heap reserve+commit *)
  Byte_buf.u32 buf 0;
  (* loader flags *)
  Byte_buf.u32 buf 16;
  (* number of data directories *)
  (* 16 data directories; directory 3 is the exception directory *)
  for i = 0 to 15 do
    if i = 3 && img.pdata <> [] then begin
      let pdata_rva =
        (List.find (fun (s : Image.section) -> s.pname = ".pdata") sections).rva
      in
      Byte_buf.u32 buf pdata_rva;
      Byte_buf.u32 buf (String.length pdata_bytes)
    end
    else begin
      Byte_buf.u32 buf 0;
      Byte_buf.u32 buf 0
    end
  done;
  assert (Byte_buf.length buf - opt_start = 240);
  (* Section table *)
  List.iter
    (fun ((s : Image.section), off) ->
      let name = Bytes.make 8 '\000' in
      Bytes.blit_string s.pname 0 name 0 (min 8 (String.length s.pname));
      Byte_buf.bytes buf name;
      Byte_buf.u32 buf (String.length s.data);
      (* virtual size *)
      Byte_buf.u32 buf s.rva;
      Byte_buf.u32 buf (align (String.length s.data) file_alignment);
      Byte_buf.u32 buf off;
      Byte_buf.u32 buf 0;
      Byte_buf.u32 buf 0;
      (* relocations *)
      Byte_buf.u16 buf 0;
      Byte_buf.u16 buf 0;
      Byte_buf.u32 buf s.characteristics)
    placed;
  (* Raw data *)
  List.iter
    (fun ((s : Image.section), off) ->
      let here = Byte_buf.length buf in
      if here > off then invalid_arg "Pe.Encode: layout overlap";
      Byte_buf.fill buf ~count:(off - here) ~byte:0;
      Byte_buf.string buf s.data)
    placed;
  Byte_buf.pad_to buf ~align:file_alignment ~byte:0;
  Byte_buf.contents buf
