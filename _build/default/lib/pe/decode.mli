(** PE32+ decoder: the inverse of {!Encode}, including exception-directory
    parsing.  Rejects non-PE input and non-x64 machines. *)

val decode : string -> (Image.t, string) result
