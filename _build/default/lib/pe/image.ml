(** Minimal PE32+ (x64 Windows) image model, for the §VII-B generality
    study: Windows binaries have no [.eh_frame], but the x64 exception
    ABI mandates a structurally similar source — the [.pdata] exception
    directory of RUNTIME_FUNCTION records, each naming a function's begin
    RVA, end RVA and UNWIND_INFO.  The paper's preliminary result: at
    least 70% of functions are covered (the gap is leaf functions, which
    the ABI exempts from unwind data). *)

(* Section characteristic bits. *)
let scn_code = 0x20
let scn_initialized_data = 0x40
let scn_mem_execute = 0x20000000
let scn_mem_read = 0x40000000
let scn_mem_write = 0x80000000

type section = {
  pname : string;  (** at most 8 bytes, as in the COFF section table *)
  rva : int;
  data : string;
  characteristics : int;
}

(** One RUNTIME_FUNCTION record of the exception directory. *)
type runtime_function = {
  begin_rva : int;
  end_rva : int;
  unwind_rva : int;
}

type t = {
  image_base : int;
  entry_rva : int;
  sections : section list;
  pdata : runtime_function list;
}

let section t name = List.find_opt (fun s -> s.pname = name) t.sections

(** Function start virtual addresses claimed by the exception directory —
    the PE analogue of FDE PC-Begin values. *)
let pdata_starts t =
  List.map (fun rf -> t.image_base + rf.begin_rva) t.pdata
  |> List.sort_uniq compare
