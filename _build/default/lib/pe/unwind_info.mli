(** UNWIND_INFO records (the [.xdata] contents): the Windows x64 analogue
    of CFI — prologue size, frame register, and unwind codes describing
    pushes and stack allocations. *)

type code =
  | Push_nonvol of int  (** UWOP_PUSH_NONVOL: register number *)
  | Alloc_small of int  (** 8–128 bytes *)
  | Alloc_large of int
  | Set_fpreg  (** establish the frame register *)

type t = {
  prolog_size : int;
  frame_reg : int;  (** 0 = none; 5 = rbp *)
  frame_offset : int;
  codes : (int * code) list;  (** (prologue offset, operation) *)
}

(** Raises [Invalid_argument] on sizes outside each opcode's range. *)
val encode : t -> string

val decode : string -> (t, string) result

(** Total stack growth described by the codes (the analogue of the CFI
    stack height after the prologue). *)
val frame_size : t -> int
