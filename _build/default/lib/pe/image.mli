(** Minimal PE32+ (x64 Windows) image model, for the §VII-B generality
    study: Windows binaries have no [.eh_frame], but the x64 exception
    ABI mandates a structurally similar source — the [.pdata] exception
    directory of RUNTIME_FUNCTION records. *)

(** {1 Section characteristics (COFF bits)} *)

val scn_code : int
val scn_initialized_data : int
val scn_mem_execute : int
val scn_mem_read : int
val scn_mem_write : int

type section = {
  pname : string;  (** at most 8 bytes, as in the COFF section table *)
  rva : int;
  data : string;
  characteristics : int;
}

(** One RUNTIME_FUNCTION record of the exception directory. *)
type runtime_function = {
  begin_rva : int;
  end_rva : int;
  unwind_rva : int;
}

type t = {
  image_base : int;
  entry_rva : int;
  sections : section list;
  pdata : runtime_function list;
}

val section : t -> string -> section option

(** Function start virtual addresses claimed by the exception directory —
    the PE analogue of FDE PC-Begin values. *)
val pdata_starts : t -> int list
