(** PE32+ encoder: a well-formed minimal x64 PE executable — DOS stub, PE
    signature, COFF header, optional header with the exception data
    directory pointing at a synthesized [.pdata] section, section table,
    raw section data. *)

val encode : Image.t -> string
