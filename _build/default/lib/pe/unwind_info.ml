(** UNWIND_INFO records (the [.xdata] contents): the Windows x64 analogue
    of CFI — prologue size, frame register, and unwind codes describing
    pushes and stack allocations. *)

open Fetch_util

type code =
  | Push_nonvol of int  (** UWOP_PUSH_NONVOL: register number *)
  | Alloc_small of int  (** 8–128 bytes, size = (info+1)*8 *)
  | Alloc_large of int  (** arbitrary size *)
  | Set_fpreg  (** establish the frame register *)

type t = {
  prolog_size : int;
  frame_reg : int;  (** 0 = none; 5 = rbp *)
  frame_offset : int;
  codes : (int * code) list;  (** (prologue offset, operation), descending *)
}

let uwop_push_nonvol = 0
let uwop_alloc_large = 1
let uwop_alloc_small = 2
let uwop_set_fpreg = 3

let encode t =
  let buf = Byte_buf.create () in
  (* version 1, no flags *)
  Byte_buf.u8 buf 0x01;
  Byte_buf.u8 buf t.prolog_size;
  let slots =
    List.concat_map
      (fun (off, c) ->
        match c with
        | Push_nonvol r -> [ (off, uwop_push_nonvol, r, []) ]
        | Alloc_small n ->
            if n mod 8 <> 0 || n < 8 || n > 128 then
              invalid_arg "Unwind_info: alloc_small size";
            [ (off, uwop_alloc_small, (n / 8) - 1, []) ]
        | Alloc_large n ->
            if n mod 8 <> 0 then invalid_arg "Unwind_info: alloc_large size";
            [ (off, uwop_alloc_large, 0, [ n / 8 ]) ]
        | Set_fpreg -> [ (off, uwop_set_fpreg, 0, []) ])
      t.codes
  in
  let count =
    List.fold_left (fun acc (_, _, _, extra) -> acc + 1 + List.length extra) 0 slots
  in
  Byte_buf.u8 buf count;
  Byte_buf.u8 buf ((t.frame_offset lsl 4) lor (t.frame_reg land 0xf));
  List.iter
    (fun (off, op, info, extra) ->
      Byte_buf.u8 buf off;
      Byte_buf.u8 buf ((info lsl 4) lor op);
      List.iter (Byte_buf.u16 buf) extra)
    slots;
  (* records are 4-aligned *)
  Byte_buf.pad_to buf ~align:4 ~byte:0;
  Byte_buf.contents buf

let decode data =
  let c = Byte_cursor.of_string data in
  try
    let vf = Byte_cursor.u8 c in
    if vf land 0x7 <> 1 then Error "unsupported UNWIND_INFO version"
    else begin
      let prolog_size = Byte_cursor.u8 c in
      let count = Byte_cursor.u8 c in
      let fr = Byte_cursor.u8 c in
      let frame_reg = fr land 0xf in
      let frame_offset = fr lsr 4 in
      let codes = ref [] in
      let i = ref 0 in
      while !i < count do
        let off = Byte_cursor.u8 c in
        let opinfo = Byte_cursor.u8 c in
        let op = opinfo land 0xf in
        let info = opinfo lsr 4 in
        incr i;
        if op = uwop_push_nonvol then codes := (off, Push_nonvol info) :: !codes
        else if op = uwop_alloc_small then
          codes := (off, Alloc_small ((info + 1) * 8)) :: !codes
        else if op = uwop_alloc_large then begin
          let n = Byte_cursor.u16 c in
          incr i;
          codes := (off, Alloc_large (n * 8)) :: !codes
        end
        else if op = uwop_set_fpreg then codes := (off, Set_fpreg) :: !codes
        else raise Exit
      done;
      Ok { prolog_size; frame_reg; frame_offset; codes = List.rev !codes }
    end
  with
  | Byte_cursor.Out_of_bounds _ -> Error "truncated UNWIND_INFO"
  | Exit -> Error "unsupported unwind opcode"

(** Total stack growth described by the codes (the analogue of the CFI
    stack height after the prologue). *)
let frame_size t =
  List.fold_left
    (fun acc (_, c) ->
      acc
      + match c with
        | Push_nonvol _ -> 8
        | Alloc_small n | Alloc_large n -> n
        | Set_fpreg -> 0)
    0 t.codes
