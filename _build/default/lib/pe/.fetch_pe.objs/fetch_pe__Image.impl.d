lib/pe/image.ml: List
