lib/pe/unwind_info.ml: Byte_buf Byte_cursor Fetch_util List
