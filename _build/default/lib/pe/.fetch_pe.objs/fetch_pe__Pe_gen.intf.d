lib/pe/pe_gen.mli: Fetch_synth Image Unwind_info
