lib/pe/encode.ml: Byte_buf Bytes Fetch_util Image List String
