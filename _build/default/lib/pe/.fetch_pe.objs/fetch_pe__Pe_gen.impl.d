lib/pe/pe_gen.ml: Byte_buf Fetch_elf Fetch_synth Fetch_util Fetch_x86 Image List Unwind_info
