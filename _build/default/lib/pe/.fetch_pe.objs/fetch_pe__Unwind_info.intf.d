lib/pe/unwind_info.mli:
