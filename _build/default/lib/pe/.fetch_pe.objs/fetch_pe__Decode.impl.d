lib/pe/decode.ml: Byte_cursor Fetch_util Image List Result String
