lib/pe/image.mli:
