lib/pe/encode.mli: Image
