lib/pe/decode.mli: Image
