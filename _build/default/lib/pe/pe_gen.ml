(** Repackage a synthetic binary as a PE32+ image with an exception
    directory, following the x64 Windows unwind ABI's coverage rule: every
    non-leaf function (anything that adjusts rsp or saves registers) gets
    RUNTIME_FUNCTION + UNWIND_INFO records; leaf functions are exempt —
    which is exactly why the paper's preliminary PE study (§VII-B) sees
    "at least 70%" coverage rather than ~100%.

    Non-contiguous functions get one record per part, mirroring the
    chained-info reality that PE shares .eh_frame's multi-record
    ambiguity. *)

open Fetch_util

let image_base = 0x140000000

(* Unwind codes for one of our functions, from its IR frame shape. *)
let unwind_info_of (f : Fetch_synth.Ir.func) =
  let codes = ref [] in
  let off = ref 0 in
  let add c bytes =
    off := !off + bytes;
    codes := (!off, c) :: !codes
  in
  (match f.frame with
  | Fetch_synth.Ir.Rbp_frame n ->
      add (Unwind_info.Push_nonvol 5) 1;
      add Unwind_info.Set_fpreg 3;
      List.iter
        (fun r -> add (Unwind_info.Push_nonvol (Fetch_x86.Reg.number r)) 1)
        f.saves;
      if n > 0 && n <= 128 then add (Unwind_info.Alloc_small n) 4
      else if n > 0 then add (Unwind_info.Alloc_large n) 7
  | Fetch_synth.Ir.Rsp_frame n ->
      List.iter
        (fun r -> add (Unwind_info.Push_nonvol (Fetch_x86.Reg.number r)) 1)
        f.saves;
      if n > 0 && n <= 128 then add (Unwind_info.Alloc_small n) 4
      else if n > 0 then add (Unwind_info.Alloc_large n) 7
  | Fetch_synth.Ir.Frameless ->
      List.iter
        (fun r -> add (Unwind_info.Push_nonvol (Fetch_x86.Reg.number r)) 1)
        f.saves);
  {
    Unwind_info.prolog_size = !off;
    frame_reg = (match f.frame with Fetch_synth.Ir.Rbp_frame _ -> 5 | _ -> 0);
    frame_offset = 0;
    codes = !codes;
  }

(** Functions the ABI requires unwind data for. *)
let needs_pdata (f : Fetch_synth.Truth.fn_truth) = not f.leaf

(** Convert a built synthetic binary into a PE32+ image.  Section
    contents are carried over verbatim; RVAs keep the low bits of the ELF
    virtual addresses so code displacements stay internally consistent. *)
let of_built (b : Fetch_synth.Link.built) =
  let rva_of vaddr = vaddr - 0x400000 in
  let sections =
    List.filter_map
      (fun (s : Fetch_elf.Image.section) ->
        match s.sec_name with
        | ".text" ->
            Some
              {
                Image.pname = ".text";
                rva = rva_of s.addr;
                data = s.data;
                characteristics =
                  Image.scn_code lor Image.scn_mem_execute lor Image.scn_mem_read;
              }
        | ".rodata" ->
            Some
              {
                Image.pname = ".rdata";
                rva = rva_of s.addr;
                data = s.data;
                characteristics =
                  Image.scn_initialized_data lor Image.scn_mem_read;
              }
        | ".data" ->
            Some
              {
                Image.pname = ".data";
                rva = rva_of s.addr;
                data = s.data;
                characteristics =
                  Image.scn_initialized_data lor Image.scn_mem_read
                  lor Image.scn_mem_write;
              }
        | _ -> None)
      b.image.sections
  in
  (* xdata: one UNWIND_INFO per covered function, packed together. *)
  let fn_by_name name =
    List.find_opt (fun (f : Fetch_synth.Ir.func) -> f.name = name) b.program.funcs
  in
  let xdata = Byte_buf.create () in
  let xdata_rva = 0x300000 in
  let pdata = ref [] in
  List.iter
    (fun (t : Fetch_synth.Truth.fn_truth) ->
      if needs_pdata t then
        match fn_by_name t.name with
        | None -> ()
        | Some f ->
            let info = unwind_info_of f in
            let unwind_rva = xdata_rva + Byte_buf.length xdata in
            Byte_buf.string xdata (Unwind_info.encode info);
            (* one RUNTIME_FUNCTION per part, as chained infos do *)
            List.iter
              (fun (lo, size) ->
                pdata :=
                  {
                    Image.begin_rva = rva_of lo;
                    end_rva = rva_of (lo + size);
                    unwind_rva;
                  }
                  :: !pdata)
              t.parts)
    b.truth.fns;
  let sections =
    sections
    @ [
        {
          Image.pname = ".xdata";
          rva = xdata_rva;
          data = Byte_buf.contents xdata;
          characteristics = Image.scn_initialized_data lor Image.scn_mem_read;
        };
      ]
  in
  {
    Image.image_base;
    entry_rva = rva_of b.image.entry;
    sections;
    pdata = List.rev !pdata;
  }
