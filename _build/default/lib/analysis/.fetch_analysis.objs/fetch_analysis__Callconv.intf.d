lib/analysis/callconv.mli: Fetch_x86 Loaded
