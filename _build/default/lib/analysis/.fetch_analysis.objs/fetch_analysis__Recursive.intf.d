lib/analysis/recursive.mli: Fetch_util Fetch_x86 Hashtbl Loaded
