lib/analysis/prologue.ml: Fetch_x86 Insn Linear_sweep List Loaded Reg
