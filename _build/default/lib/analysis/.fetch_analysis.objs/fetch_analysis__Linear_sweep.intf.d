lib/analysis/linear_sweep.mli: Fetch_util Fetch_x86 Loaded
