lib/analysis/callconv.ml: Fetch_x86 Hashtbl Insn List Loaded Reg Semantics Set
