lib/analysis/jump_table.ml: Fetch_elf Fetch_x86 Insn Int32 List Option Reg String
