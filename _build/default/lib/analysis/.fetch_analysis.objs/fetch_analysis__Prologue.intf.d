lib/analysis/prologue.mli: Loaded
