lib/analysis/loaded.ml: Fetch_dwarf Fetch_elf Fetch_x86 Hashtbl Image List String
