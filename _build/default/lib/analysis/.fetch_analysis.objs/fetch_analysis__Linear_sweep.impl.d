lib/analysis/linear_sweep.ml: Fetch_elf Fetch_util Fetch_x86 List Loaded
