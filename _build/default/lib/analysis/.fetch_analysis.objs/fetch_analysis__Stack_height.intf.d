lib/analysis/stack_height.mli: Hashtbl Loaded
