lib/analysis/loaded.mli: Fetch_dwarf Fetch_elf Fetch_x86 Hashtbl
