lib/analysis/jump_table.mli: Fetch_elf Fetch_x86
