lib/analysis/stack_height.ml: Fetch_x86 Hashtbl Insn Jump_table List Loaded Queue Semantics
