lib/analysis/recursive.ml: Fetch_util Fetch_x86 Hashtbl Insn Jump_table List Loaded Queue Reg Semantics
