(** Calling-convention validation (§IV-E): a candidate function start is
    plausible only if no non-argument register is read before it is
    written.

    The check walks the CFG from the candidate start with bounded depth.
    Arguments (rdi, rsi, rdx, rcx, r8, r9) and rsp start initialized; a
    [push] is a save, not a use; a call defines rax.  Any explored path
    that reads an uninitialized non-argument register invalidates the
    candidate; exhausting the exploration budget validates it
    (conservative towards acceptance, as real functions must pass). *)

type verdict = Valid | Invalid | Unknown

(** Where and which register violated the rule ([reg = None] means an
    undecodable instruction was reached). *)
type violation = { at : int; reg : Fetch_x86.Reg.t option }

(** Validate a candidate entry, with a diagnostic on failure.  [noreturn]
    and [cond_noreturn] (optional) stop the walk after calls known not to
    return, so it cannot run off a function's end into data. *)
val validate_diag :
  ?noreturn:(int -> bool) ->
  ?cond_noreturn:(int -> bool) ->
  Loaded.t ->
  int ->
  (unit, violation) result

val validate :
  ?noreturn:(int -> bool) ->
  ?cond_noreturn:(int -> bool) ->
  Loaded.t ->
  int ->
  verdict

(** The predicate Algorithm 1 calls [MeetCallConv]. *)
val meets_call_conv :
  ?noreturn:(int -> bool) ->
  ?cond_noreturn:(int -> bool) ->
  Loaded.t ->
  int ->
  bool
