(** Static stack-height analysis, modelling the analyses shipped by ANGR
    and DYNINST that Table IV compares against the CFI oracle.

    The walker propagates the stack height (bytes pushed since function
    entry) across the CFG it can recover; model defects (linear-decode
    arrival races, per-style jump-table power) reproduce the error modes
    the paper attributes to the real implementations. *)

type style = {
  resolve_pic_tables : bool;
  resolve_load_tables : bool;  (** the [mov r, \[table+idx*8\]; jmp r] form *)
  linear_fallthrough : bool;
      (** keep decoding straight past unconditional jumps; first-write
          wins, so the straight-line guess can plant wrong heights *)
  linear_after_indirect : bool;
      (** keep decoding straight past an unresolved indirect jump *)
  track_through_indirect_calls : bool;
      (** assume an unknown callee preserves rsp *)
}

val angr_style : style
val dyninst_style : style

(** [analyze loaded ~style entry] returns heights (bytes grown since
    entry) at every address reached from [entry]; first write wins. *)
val analyze : Loaded.t -> style:style -> int -> (int, int) Hashtbl.t
