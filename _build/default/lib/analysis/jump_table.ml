(** Bounded-pattern jump-table resolution, in the style of DYNINST's
    backward slicing (§IV-C, construct 1): the only indirect jumps the safe
    analyses follow are those proven to dispatch through a bounds-checked
    table, and then only to the table's entries.

    Recognized shapes (both GCC-style absolute tables and Clang/PIC-style
    offset tables):

    {v
      cmp  idx, N ; ja default ; jmp [table + idx*8]
      cmp  idx, N ; ja default ; mov r, [table + idx*8] ; jmp r
      cmp  idx, N ; ja default ; lea rt, [rip+table] ;
          movsxd rx, [rt + idx*4] ; add rx, rt ; jmp rx
    v} *)

open Fetch_x86

(* How far back we search in the already-decoded instruction window. *)
let window = 12

type resolved = { table_addr : int; targets : int list }

(* Find the most recent [cmp idx, imm] guarded by [ja] in the window.
   [prior] is the reversed list of instructions decoded before the jump. *)
let find_bound ~prior idx =
  let rec scan saw_ja = function
    | [] -> None
    | insn :: rest -> (
        match insn with
        | Insn.Jcc (Insn.A, _) | Insn.Jcc_short (Insn.A, _) -> scan true rest
        | Insn.Arith (Insn.Cmp, _, Insn.Reg r, Insn.Imm n)
          when Reg.equal r idx && saw_ja ->
            Some (n + 1)
        | Insn.Arith (_, _, Insn.Reg r, _) when Reg.equal r idx -> None
        | Insn.Mov (_, Insn.Reg r, _) when Reg.equal r idx -> None
        | _ -> scan saw_ja rest)
  in
  scan false prior

let read_abs_table image ~table_addr ~count =
  let rec go i acc =
    if i >= count then Some (List.rev acc)
    else
      match Fetch_elf.Image.read_u64 image (table_addr + (8 * i)) with
      | Some v -> go (i + 1) (v :: acc)
      | None -> None
  in
  go 0 []

let read_pic_table image ~table_addr ~count =
  let rec go i acc =
    if i >= count then Some (List.rev acc)
    else
      match Fetch_elf.Image.read image ~addr:(table_addr + (4 * i)) ~len:4 with
      | Some s ->
          let off = Int32.to_int (String.get_int32_le s 0) in
          go (i + 1) ((table_addr + off) :: acc)
      | None -> None
  in
  go 0 []

let validate image targets =
  if List.for_all (Fetch_elf.Image.in_exec_range image) targets then
    Some targets
  else None

(* Trace how register [r] got its value: a table load or a PIC add. *)
let rec resolve_reg image ~prior r =
  match prior with
  | [] -> None
  | insn :: rest -> (
      match insn with
      | Insn.Mov (Insn.W64, Insn.Reg d, Insn.Mem m) when Reg.equal d r -> (
          (* mov r, [table + idx*8] *)
          match (m.base, m.index, m.rip_rel) with
          | None, Some (idx, 8), false -> (
              match find_bound ~prior:rest idx with
              | Some count -> (
                  match read_abs_table image ~table_addr:m.disp ~count with
                  | Some targets ->
                      Option.map
                        (fun t -> { table_addr = m.disp; targets = t })
                        (validate image targets)
                  | None -> None)
              | None -> None)
          | _ -> None)
      | Insn.Arith (Insn.Add, Insn.W64, Insn.Reg d, Insn.Reg base)
        when Reg.equal d r ->
          (* add rx, rt: PIC pattern; keep looking for the movsxd *)
          resolve_pic image ~prior:rest ~rx:r ~rt:base
      | Insn.Mov (_, Insn.Reg d, _) when Reg.equal d r -> None
      | Insn.Lea (d, _) when Reg.equal d r -> None
      | _ -> resolve_reg image ~prior:rest r)

and resolve_pic image ~prior ~rx ~rt =
  (* expect: movsxd rx, [rt + idx*4]  ...  lea rt, [rip+table] *)
  let rec find_movsxd = function
    | [] -> None
    | Insn.Movsxd (d, m) :: rest when Reg.equal d rx -> (
        match (m.base, m.index) with
        | Some b, Some (idx, 4) when Reg.equal b rt -> Some (idx, rest)
        | _ -> None)
    | _ :: rest -> find_movsxd rest
  in
  match find_movsxd prior with
  | None -> None
  | Some (idx, rest) -> (
      (* [rest] is the reversed stream before the movsxd: the lea that
         materializes the table base and, further back, the cmp/ja bound.
         RIP-relative displacements were absolutized by [resolve], so the
         lea appears with a bare absolute displacement. *)
      let rec find_lea = function
        | [] -> None
        | Insn.Lea (d, m) :: _
          when Reg.equal d rt && m.base = None && m.index = None ->
            Some m.disp
        | _ :: r -> find_lea r
      in
      match find_lea rest with
      | None -> None
      | Some table_addr -> (
          match find_bound ~prior:rest idx with
          | Some count -> (
              match read_pic_table image ~table_addr ~count with
              | Some targets ->
                  Option.map
                    (fun t -> { table_addr; targets = t })
                    (validate image targets)
              | None -> None)
          | None -> None))

(** Try to resolve the indirect jump [jmp_insn] located at [addr], given the
    reversed window of instructions preceding it in the same block, as
    (address, instruction) pairs. *)
let resolve (image : Fetch_elf.Image.t) ~prior (operand : Insn.operand) =
  let prior =
    (* absolutize rip-relative displacements using each insn's end addr *)
    List.filteri (fun i _ -> i < window) prior
    |> List.map (fun (addr, len, insn) ->
           Insn.map_mem
             (fun m ->
               if m.rip_rel then { m with disp = addr + len + m.disp; rip_rel = false }
               else m)
             insn)
  in
  match operand with
  | Insn.Mem m when not m.rip_rel -> (
      (* jmp [table + idx*8] *)
      match (m.base, m.index) with
      | None, Some (idx, 8) -> (
          match find_bound ~prior idx with
          | Some count -> (
              match read_abs_table image ~table_addr:m.disp ~count with
              | Some targets ->
                  Option.map
                    (fun t -> { table_addr = m.disp; targets = t })
                    (validate image targets)
              | None -> None)
          | None -> None)
      | _ -> None)
  | Insn.Reg r -> resolve_reg image ~prior r
  | Insn.Mem _ | Insn.Imm _ -> None
