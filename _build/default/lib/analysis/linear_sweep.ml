(** Linear-sweep disassembly with one-byte resynchronization, plus the gap
    enumeration used by the heuristic passes (angr's scan, prologue
    matching, NUCLEUS). *)

(** Decode [lo, hi) linearly; on an undecodable byte, skip one byte and
    retry.  Returns instructions in order and the list of skipped (junk)
    byte addresses. *)
let decode_range loaded ~lo ~hi =
  let insns = ref [] in
  let junk = ref [] in
  let rec go addr =
    if addr < hi then
      match Loaded.insn_at loaded addr with
      | Some (insn, len) when addr + len <= hi ->
          insns := (addr, len, insn) :: !insns;
          go (addr + len)
      | Some _ | None ->
          junk := addr :: !junk;
          go (addr + 1)
  in
  go lo;
  (List.rev !insns, List.rev !junk)

(** Maximal sub-ranges of the executable sections not covered by
    [covered].  [covered] is an interval map of already-claimed bytes. *)
let gaps loaded ~covered =
  let ranges = Loaded.text_ranges loaded in
  List.concat_map
    (fun (lo, hi) ->
      let rec walk pos acc =
        if pos >= hi then List.rev acc
        else
          match Fetch_util.Interval_map.find covered pos with
          | Some (_, chi, ()) -> walk chi acc
          | None -> (
              match Fetch_util.Interval_map.next_from covered pos with
              | Some (nlo, _, ()) when nlo < hi ->
                  walk nlo ((pos, nlo) :: acc)
              | Some _ | None -> List.rev ((pos, hi) :: acc))
      in
      walk lo [])
    ranges

(** Is the range all padding (NOPs / int3 / zero bytes)? *)
let all_padding loaded ~lo ~hi =
  let rec go addr =
    if addr >= hi then true
    else
      match Loaded.insn_at loaded addr with
      | Some (Fetch_x86.Insn.Nop n, _) -> go (addr + n)
      | Some (Fetch_x86.Insn.Int3, _) -> go (addr + 1)
      | _ -> (
          match Fetch_elf.Image.read loaded.Loaded.image ~addr ~len:1 with
          | Some "\x00" -> go (addr + 1)
          | _ -> false)
  in
  go lo

(** Leading padding length at [lo] (for angr's alignment-function
    heuristic). *)
let leading_padding loaded ~lo ~hi =
  let rec go addr =
    if addr >= hi then addr - lo
    else
      match Loaded.insn_at loaded addr with
      | Some (Fetch_x86.Insn.Nop n, _) -> go (addr + n)
      | Some (Fetch_x86.Insn.Int3, _) -> go (addr + 1)
      | _ -> addr - lo
  in
  go lo
