(** Function-prologue pattern matching ("Fsig" in Figure 5) — the classic
    unsafe heuristic: scan unclaimed code for byte/instruction shapes that
    commonly begin compiled functions. *)

open Fetch_x86

type strictness =
  | Strict  (** Ghidra-style: full frame-setup sequences only *)
  | Loose  (** angr-style: any plausible first instruction *)

(* Does a prologue-shaped instruction sequence start at [addr]? *)
let matches loaded ~strictness addr =
  let i1 = Loaded.insn_at loaded addr in
  match strictness with
  | Strict -> (
      match i1 with
      | Some (Insn.Endbr64, l1) -> (
          match Loaded.insn_at loaded (addr + l1) with
          | Some ((Insn.Push _ | Insn.Arith (Insn.Sub, _, Insn.Reg Reg.Rsp, _)), _) ->
              true
          | _ -> false)
      | Some (Insn.Push Reg.Rbp, l1) -> (
          match Loaded.insn_at loaded (addr + l1) with
          | Some (Insn.Mov (Insn.W64, Insn.Reg Reg.Rbp, Insn.Reg Reg.Rsp), _) ->
              true
          | _ -> false)
      | _ -> false)
  | Loose -> (
      match i1 with
      | Some (Insn.Endbr64, _) -> true
      | Some (Insn.Push r, l1) when not (Reg.equal r Reg.Rsp) -> (
          (* any push followed by something decodable *)
          match Loaded.insn_at loaded (addr + l1) with
          | Some _ -> true
          | None -> false)
      | Some (Insn.Arith (Insn.Sub, Insn.W64, Insn.Reg Reg.Rsp, Insn.Imm _), _) ->
          true
      | Some (Insn.Mov (Insn.W32, Insn.Reg _, Insn.Imm _), l1) -> (
          (* mov reg, imm openings, common in small leaf functions *)
          match Loaded.insn_at loaded (addr + l1) with
          | Some _ -> true
          | None -> false)
      | _ -> false)

(** Scan the given gaps for prologue matches; [every_byte] scans all byte
    offsets (angr) rather than only gap starts after padding (Ghidra). *)
let scan loaded ~strictness ~every_byte gaps =
  List.concat_map
    (fun (lo, hi) ->
      if every_byte then
        let rec go addr acc =
          if addr >= hi then List.rev acc
          else if matches loaded ~strictness addr then go (addr + 1) (addr :: acc)
          else go (addr + 1) acc
        in
        go lo []
      else
        let pad = Linear_sweep.leading_padding loaded ~lo ~hi in
        let start = lo + pad in
        if start < hi && matches loaded ~strictness start then [ start ] else [])
    gaps
