(** Static stack-height analysis, modelling the analyses shipped by ANGR
    and DYNINST that Table IV compares against the CFI oracle.

    The walker propagates the stack height (bytes pushed since function
    entry) across the CFG it can recover.  Model fidelity notes:

    - Both tools decode function ranges partly linearly; we reproduce this
      with [linear_fallthrough]: after an unconditional jump the walker also
      continues at the next address with the current height.  When that
      straight-line guess reaches a block before the semantically correct
      path does, the block keeps the wrong height — the "side effects of
      other errors" the paper blames for inaccuracy (§V-B).
    - The models differ in jump-table power: the DYNINST-style analysis
      resolves all three table shapes, the ANGR-style one misses the
      register-load form ([mov r, \[table+idx*8\]; jmp r]); unresolved
      dispatches leave case blocks unvisited (recall loss).
    - Heights become unknown at instructions whose stack effect is not
      statically trackable ([leave], [mov rsp, r]). *)

open Fetch_x86

type style = {
  resolve_pic_tables : bool;
  resolve_load_tables : bool;  (** the [mov r, \[table+idx*8\]; jmp r] form *)
  linear_fallthrough : bool;
  linear_after_indirect : bool;
      (** keep decoding straight past an unresolved indirect jump *)
  track_through_indirect_calls : bool;
      (** assume an unknown callee preserves rsp; when false, tracking is
          abandoned after indirect call sites *)
}

let angr_style =
  {
    resolve_pic_tables = true;
    resolve_load_tables = false;
    linear_fallthrough = true;
    linear_after_indirect = false;
    track_through_indirect_calls = true;
  }

let dyninst_style =
  {
    resolve_pic_tables = true;
    resolve_load_tables = true;
    linear_fallthrough = true;
    linear_after_indirect = true;
    track_through_indirect_calls = true;
  }

(** Heights at every address reached from [entry]; first write wins (the
    arrival-order sensitivity is part of the model). *)
let analyze loaded ~(style : style) entry =
  let heights : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let visited_blocks = Hashtbl.create 32 in
  let frontier = Queue.create () in
  Queue.add (entry, 0) frontier;
  let record addr h =
    if not (Hashtbl.mem heights addr) then Hashtbl.replace heights addr h
  in
  let stop_linear addr =
    (* both tools know FDE boundaries: the linear guess never crosses into
       another FDE-covered function *)
    Loaded.fde_starting_at loaded addr
  in
  let table_allowed op prior =
    match Jump_table.resolve loaded.Loaded.image ~prior op with
    | Some { Jump_table.targets; _ } -> (
        (* classify the shape to apply the style's power *)
        match op with
        | Insn.Mem _ -> Some targets (* direct absolute form *)
        | Insn.Reg _ ->
            (* load form or PIC form; distinguish by scanning the window *)
            let is_pic =
              List.exists
                (fun (_, _, i) ->
                  match i with Insn.Movsxd _ -> true | _ -> false)
                prior
            in
            if is_pic then if style.resolve_pic_tables then Some targets else None
            else if style.resolve_load_tables then Some targets
            else None
        | Insn.Imm _ -> None)
    | None -> None
  in
  while not (Queue.is_empty frontier) do
    let addr0, h0 = Queue.pop frontier in
    if not (Hashtbl.mem visited_blocks addr0) then begin
      Hashtbl.replace visited_blocks addr0 ();
      (* walk the straight line *)
      let rec walk addr h window =
        if not (Loaded.in_text loaded addr) then ()
        else
          match Loaded.insn_at loaded addr with
          | None -> ()
          | Some (insn, len) -> (
              record addr h;
              let window = (addr, len, insn) :: window in
              let continue_with h' = walk (addr + len) h' window in
              let next_height () =
                match Semantics.sp_delta insn with
                | Some d -> Some (h - d)
                | None -> None
              in
              match Semantics.flow insn with
              | Semantics.Callf (Semantics.Indirect _)
                when not style.track_through_indirect_calls ->
                  () (* unknown callee: tracking abandoned *)
              | Semantics.Fall | Semantics.Callf _ -> (
                  match next_height () with
                  | Some h' -> continue_with h'
                  | None -> () (* untrackable: abandon the path *))
              | Semantics.Ret | Semantics.Halt -> ()
              | Semantics.Jump (Semantics.Direct t) ->
                  Queue.add (t, h) frontier;
                  (* the linear guess continues immediately, so its (often
                     wrong) heights win the first-write race — this is the
                     arrival-order defect the model reproduces *)
                  if style.linear_fallthrough && not (stop_linear (addr + len))
                  then walk (addr + len) h window
              | Semantics.Cond t ->
                  Queue.add (t, h) frontier;
                  continue_with h
              | Semantics.Jump (Semantics.Indirect op) -> (
                  match table_allowed op window with
                  | Some targets ->
                      List.iter (fun t -> Queue.add (t, h) frontier) targets
                  | None ->
                      if
                        style.linear_after_indirect
                        && not (stop_linear (addr + len))
                      then walk (addr + len) h window))
      in
      walk addr0 h0 []
    end
  done;
  heights
