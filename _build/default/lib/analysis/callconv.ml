(** Calling-convention validation (§IV-E): a candidate function start is
    plausible only if no non-argument register is read before it is written.

    The check walks the CFG from the candidate start path-sensitively with
    bounded depth.  Arguments (rdi, rsi, rdx, rcx, r8, r9) and rsp start
    initialized; a [push] is a save, not a use; a call defines rax.  Any
    path that reads an uninitialized non-argument register invalidates the
    candidate. *)

open Fetch_x86

let max_insns = 64
let max_blocks = 12

type verdict =
  | Valid
  | Invalid
  | Unknown

(** Diagnostic form: where and which register violated the rule. *)
type violation = { at : int; reg : Reg.t option }

module RS = Set.Make (Reg)

let initial_set = RS.of_list Reg.args

(* Walk one straight-line block; returns [Error violation] on violation or
   [Ok (init, next_starts)] with successor addresses.  [noreturn] /
   [cond_noreturn] stop the walk after calls known to never return
   (otherwise the walk would run off the function's end into padding or
   data).  [rdi] tracks the first argument for conditional-noreturn call
   sites, mirroring the engine's backward-slice policy: only a provably
   zero argument lets the call return. *)
let rec walk_block loaded ~noreturn ~cond_noreturn ~fuel ~rdi init addr
    acc_next =
  if fuel <= 0 then Ok (init, acc_next)
  else
    match Loaded.insn_at loaded addr with
    | None -> Error { at = addr; reg = None }
    | Some (insn, len) -> (
        let reads = Semantics.uses insn in
        match
          List.find_opt
            (fun r -> (not (RS.mem r init)) && not (Reg.is_arg r))
            reads
        with
        | Some r -> Error { at = addr; reg = Some r }
        | None -> (
            let init =
              List.fold_left (fun s r -> RS.add r s) init (Semantics.defs insn)
            in
            let rdi =
              match insn with
              | Insn.Mov (_, Insn.Reg Reg.Rdi, Insn.Imm 0) -> `Zero
              | Insn.Arith (Insn.Xor, _, Insn.Reg Reg.Rdi, Insn.Reg Reg.Rdi) ->
                  `Zero
              | Insn.Mov (_, Insn.Reg Reg.Rdi, Insn.Imm _) -> `Nonzero
              | _ ->
                  if List.mem Reg.Rdi (Semantics.defs insn) then `Unknown
                  else rdi
            in
            match Semantics.flow insn with
            | Semantics.Fall ->
                walk_block loaded ~noreturn ~cond_noreturn ~fuel:(fuel - 1)
                  ~rdi init (addr + len) acc_next
            | Semantics.Ret | Semantics.Halt -> Ok (init, acc_next)
            | Semantics.Jump (Semantics.Direct t) -> Ok (init, t :: acc_next)
            | Semantics.Jump (Semantics.Indirect _) -> Ok (init, acc_next)
            | Semantics.Cond t -> Ok (init, t :: (addr + len) :: acc_next)
            | Semantics.Callf (Semantics.Direct t) when noreturn t ->
                Ok (init, acc_next)
            | Semantics.Callf (Semantics.Direct t)
              when cond_noreturn t && rdi <> `Zero ->
                Ok (init, acc_next)
            | Semantics.Callf _ ->
                (* the callee defines the return-value register *)
                let init = RS.add Reg.Rax init in
                walk_block loaded ~noreturn ~cond_noreturn ~fuel:(fuel - 1)
                  ~rdi:`Unknown init (addr + len) acc_next))

(** Validate [start] as a function entry, with a diagnostic on failure.
    [noreturn] (optional) tells the walk which call targets never return. *)
let validate_diag ?(noreturn = fun _ -> false)
    ?(cond_noreturn = fun _ -> false) loaded start =
  if not (Loaded.in_text loaded start) then Error { at = start; reg = None }
  else begin
    let visited = Hashtbl.create 8 in
    let rec go blocks_left frontier =
      match frontier with
      | [] -> Ok ()
      | (addr, init) :: rest ->
          if blocks_left <= 0 then Ok () (* bounded: assume fine *)
          else if Hashtbl.mem visited addr then go blocks_left rest
          else begin
            Hashtbl.replace visited addr ();
            match
              walk_block loaded ~noreturn ~cond_noreturn ~fuel:max_insns
                ~rdi:`Unknown init addr []
            with
            | Error v -> Error v
            | Ok (init', nexts) ->
                let nexts =
                  List.filter (Loaded.in_text loaded) nexts
                  |> List.map (fun a -> (a, init'))
                in
                go (blocks_left - 1) (nexts @ rest)
          end
    in
    go max_blocks [ (start, initial_set) ]
  end

(** Validate [start] as a function entry. *)
let validate ?noreturn ?cond_noreturn loaded start =
  match validate_diag ?noreturn ?cond_noreturn loaded start with
  | Ok () -> Valid
  | Error _ -> Invalid

(** [meets_call_conv loaded addr] — the predicate Algorithm 1 calls
    [MeetCallConv]. *)
let meets_call_conv ?noreturn ?cond_noreturn loaded addr =
  validate ?noreturn ?cond_noreturn loaded addr = Valid
