(** Linear-sweep disassembly with one-byte resynchronization, plus the
    gap enumeration used by the heuristic passes (angr's scan, prologue
    matching, NUCLEUS). *)

(** Decode [\[lo, hi)] linearly; on an undecodable byte, skip one byte
    and retry.  Returns instructions in order and the skipped (junk)
    byte addresses. *)
val decode_range :
  Loaded.t -> lo:int -> hi:int -> (int * int * Fetch_x86.Insn.t) list * int list

(** Maximal sub-ranges of the executable sections not covered by
    [covered] (an interval map of already-claimed bytes). *)
val gaps : Loaded.t -> covered:unit Fetch_util.Interval_map.t -> (int * int) list

(** Is the range all padding (NOPs / int3 / zero bytes)? *)
val all_padding : Loaded.t -> lo:int -> hi:int -> bool

(** Length of the leading padding run at [lo] (for angr's
    alignment-function heuristic). *)
val leading_padding : Loaded.t -> lo:int -> hi:int -> int
