(** Function-prologue pattern matching ("Fsig" in Figure 5) — the classic
    unsafe heuristic: scan unclaimed code for byte/instruction shapes
    that commonly begin compiled functions. *)

type strictness =
  | Strict  (** Ghidra-style: full frame-setup sequences only *)
  | Loose  (** angr/BYTEWEIGHT-style: any plausible first instruction *)

(** Does a prologue-shaped instruction sequence start at the address? *)
val matches : Loaded.t -> strictness:strictness -> int -> bool

(** Scan the given gaps for matches; [every_byte] scans all byte offsets
    (angr) rather than only each gap's first post-padding byte
    (Ghidra). *)
val scan :
  Loaded.t ->
  strictness:strictness ->
  every_byte:bool ->
  (int * int) list ->
  int list
