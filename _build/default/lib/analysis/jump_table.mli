(** Bounded-pattern jump-table resolution, in the style of DYNINST's
    backward slicing (§IV-C, construct 1): the only indirect jumps the
    safe analyses follow are those proven to dispatch through a
    bounds-checked table, and then only to the table's entries.

    Recognized shapes (GCC-style absolute tables and Clang/PIC-style
    offset tables):

    {v
      cmp idx, N ; ja default ; jmp [table + idx*8]
      cmp idx, N ; ja default ; mov r, [table + idx*8] ; jmp r
      cmp idx, N ; ja default ; lea rt, [rip+table] ;
          movsxd rx, [rt + idx*4] ; add rx, rt ; jmp rx
    v} *)

type resolved = { table_addr : int; targets : int list }

(** [resolve image ~prior operand] slices backwards through [prior] (the
    reversed (addr, len, insn) window preceding the dispatch jump, across
    block boundaries) and reads the table from the image.  Every entry
    must land in executable memory or the whole dispatch is rejected. *)
val resolve :
  Fetch_elf.Image.t ->
  prior:(int * int * Fetch_x86.Insn.t) list ->
  Fetch_x86.Insn.operand ->
  resolved option
