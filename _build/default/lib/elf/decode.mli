(** ELF64 decoder: parse bytes produced by {!Encode} (or any well-formed
    little-endian ELF64 file) back into an {!Image.t}.

    Rejects non-ELF input, 32-bit or big-endian files, non-x86-64
    machines, and structurally truncated files with a descriptive
    error. *)

type error = string

val decode : string -> (Image.t, error) result
