(** ELF64 encoder: serialize an {!Image.t} to a well-formed executable
    file.

    Layout: ELF header, program headers (one PT_LOAD per allocated
    section, file offsets congruent to virtual addresses modulo the page
    size), section contents, then the section header table.  A
    [.shstrtab] is synthesized; when the image carries symbols a
    [.symtab]/[.strtab] pair is appended.  Raises [Invalid_argument] if
    the layout cannot be honoured. *)

val encode : Image.t -> string
