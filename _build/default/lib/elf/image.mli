(** In-memory model of an ELF64 executable image.

    This is the interchange type between the synthetic compiler (which
    builds one) and the analysis side (which decodes one from bytes).
    Only the features that matter to function detection are modelled:
    sections with virtual addresses and contents, and the symbol table. *)

(** {1 Section flags (ELF [sh_flags] bits)} *)

val shf_write : int
val shf_alloc : int
val shf_execinstr : int

type section_kind =
  | Progbits
  | Nobits
  | Symtab
  | Strtab
  | Other of int

type section = {
  sec_name : string;
  kind : section_kind;
  flags : int;
  addr : int;  (** virtual address; 0 for non-alloc sections *)
  data : string;  (** contents; for [Nobits] only the length is meaningful *)
  addralign : int;
  entsize : int;
}

type sym_kind = Func | Object | Notype

type binding = Local | Global | Weak

type symbol = {
  sym_name : string;
  value : int;
  size : int;
  sym_kind : sym_kind;
  bind : binding;
  defined : bool;  (** false for SHN_UNDEF imports *)
}

type t = {
  entry : int;
  sections : section list;
  symbols : symbol list;
}

(** {1 Queries} *)

(** Section by name. *)
val section : t -> string -> section option

val has_section : t -> string -> bool
val executable : section -> bool
val alloc : section -> bool

(** All executable sections, lowest address first. *)
val exec_sections : t -> section list

(** The allocated section whose address range contains [addr]. *)
val section_at : t -> int -> section option

(** [read t ~addr ~len] reads loaded image content at a virtual address. *)
val read : t -> addr:int -> len:int -> string option

(** Little-endian 8-byte read at a virtual address. *)
val read_u64 : t -> int -> int option

(** Is [addr] inside an executable section? *)
val in_exec_range : t -> int -> bool

(** Defined FUNC symbols — the set symbol-based tools start from. *)
val func_symbols : t -> symbol list

(** Remove the symbol table, as shipping stripped binaries do. *)
val strip : t -> t
