(** In-memory model of an ELF64 executable image.

    This is the interchange type between the synthetic compiler (which
    builds one) and the analysis side (which decodes one from bytes).  Only
    the features that matter to function detection are modelled: sections
    with virtual addresses and contents, and the symbol table. *)

(* Section flag bits, as in the ELF spec. *)
let shf_write = 0x1
let shf_alloc = 0x2
let shf_execinstr = 0x4

type section_kind =
  | Progbits
  | Nobits
  | Symtab
  | Strtab
  | Other of int

type section = {
  sec_name : string;
  kind : section_kind;
  flags : int;
  addr : int;  (** virtual address; 0 for non-alloc sections *)
  data : string;  (** contents; for [Nobits] only the length is meaningful *)
  addralign : int;
  entsize : int;
}

type sym_kind = Func | Object | Notype

type binding = Local | Global | Weak

type symbol = {
  sym_name : string;
  value : int;
  size : int;
  sym_kind : sym_kind;
  bind : binding;
  defined : bool;  (** false for SHN_UNDEF imports *)
}

type t = {
  entry : int;
  sections : section list;
  symbols : symbol list;
}

let section t name = List.find_opt (fun s -> s.sec_name = name) t.sections

let has_section t name = Option.is_some (section t name)

let executable s = s.flags land shf_execinstr <> 0

let alloc s = s.flags land shf_alloc <> 0

(** All executable sections, lowest address first. *)
let exec_sections t =
  List.filter executable t.sections
  |> List.sort (fun a b -> compare a.addr b.addr)

(** Section whose [\[addr, addr+len)] range contains [addr]. *)
let section_at t addr =
  List.find_opt
    (fun s ->
      s.flags land shf_alloc <> 0
      && addr >= s.addr
      && addr < s.addr + String.length s.data)
    t.sections

(** Read [len] bytes of loaded image content at virtual address [addr]. *)
let read t ~addr ~len =
  match section_at t addr with
  | Some s when addr + len <= s.addr + String.length s.data ->
      Some (String.sub s.data (addr - s.addr) len)
  | Some _ | None -> None

let read_u64 t addr =
  match read t ~addr ~len:8 with
  | Some s -> Some (Int64.to_int (String.get_int64_le s 0))
  | None -> None

let in_exec_range t addr =
  List.exists
    (fun s -> addr >= s.addr && addr < s.addr + String.length s.data)
    (exec_sections t)

(** Function symbols (defined, [Func] kind), the set tools start from. *)
let func_symbols t =
  List.filter (fun s -> s.sym_kind = Func && s.defined) t.symbols

(** Remove the symbol table, as shipping stripped binaries do. *)
let strip t =
  {
    t with
    symbols = [];
    sections =
      List.filter
        (fun s -> s.kind <> Symtab && s.sec_name <> ".strtab")
        t.sections;
  }
