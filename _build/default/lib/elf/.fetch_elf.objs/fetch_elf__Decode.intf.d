lib/elf/decode.mli: Image
