lib/elf/encode.mli: Image
