lib/elf/decode.ml: Array Byte_cursor Fetch_util Image List Result String
