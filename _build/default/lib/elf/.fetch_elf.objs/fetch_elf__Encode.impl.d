lib/elf/encode.ml: Byte_buf Fetch_util Image List String
