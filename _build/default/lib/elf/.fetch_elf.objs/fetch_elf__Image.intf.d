lib/elf/image.mli:
