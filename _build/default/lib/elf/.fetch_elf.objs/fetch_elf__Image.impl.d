lib/elf/image.ml: Int64 List Option String
