(** ELF64 decoder: parse bytes produced by {!Encode} (or any well-formed
    little-endian ELF64 file) back into an {!Image.t}. *)

open Fetch_util

type error = string

let ( let* ) = Result.bind

let guard cond msg = if cond then Ok () else Error msg

type raw_sh = {
  rs_name : int;
  rs_kind : int;
  rs_flags : int;
  rs_addr : int;
  rs_off : int;
  rs_size : int;
  rs_link : int;
  rs_entsize : int;
  rs_align : int;
}

let read_sh c =
  let rs_name = Byte_cursor.u32 c in
  let rs_kind = Byte_cursor.u32 c in
  let rs_flags = Byte_cursor.u64 c in
  let rs_addr = Byte_cursor.u64 c in
  let rs_off = Byte_cursor.u64 c in
  let rs_size = Byte_cursor.u64 c in
  let rs_link = Byte_cursor.u32 c in
  let _info = Byte_cursor.u32 c in
  let rs_align = Byte_cursor.u64 c in
  let rs_entsize = Byte_cursor.u64 c in
  { rs_name; rs_kind; rs_flags; rs_addr; rs_off; rs_size; rs_link; rs_entsize; rs_align }

let kind_of_code = function
  | 1 -> Image.Progbits
  | 2 -> Image.Symtab
  | 3 -> Image.Strtab
  | 8 -> Image.Nobits
  | n -> Image.Other n

let strtab_get data off =
  if off >= String.length data then ""
  else
    match String.index_from_opt data off '\000' with
    | Some e -> String.sub data off (e - off)
    | None -> String.sub data off (String.length data - off)

let decode_symbols ~symtab_data ~strtab_data =
  let c = Byte_cursor.of_string symtab_data in
  let syms = ref [] in
  (try
     while Byte_cursor.remaining c >= 24 do
       let name_off = Byte_cursor.u32 c in
       let info = Byte_cursor.u8 c in
       let _other = Byte_cursor.u8 c in
       let shndx = Byte_cursor.u16 c in
       let value = Byte_cursor.u64 c in
       let size = Byte_cursor.u64 c in
       let name = strtab_get strtab_data name_off in
       let bind =
         match info lsr 4 with 1 -> Image.Global | 2 -> Image.Weak | _ -> Image.Local
       in
       let sym_kind =
         match info land 0xf with 2 -> Image.Func | 1 -> Image.Object | _ -> Image.Notype
       in
       if name <> "" || value <> 0 then
         syms :=
           { Image.sym_name = name; value; size; sym_kind; bind; defined = shndx <> 0 }
           :: !syms
     done
   with Byte_cursor.Out_of_bounds _ -> ());
  List.rev !syms

let decode (raw : string) : (Image.t, error) result =
  let len = String.length raw in
  let* () = guard (len >= 64) "file too short for ELF header" in
  let* () = guard (String.sub raw 0 4 = "\x7fELF") "bad ELF magic" in
  let* () = guard (raw.[4] = '\002') "not ELFCLASS64" in
  let* () = guard (raw.[5] = '\001') "not little-endian" in
  let c = Byte_cursor.of_string raw in
  Byte_cursor.seek c 16;
  let _etype = Byte_cursor.u16 c in
  let machine = Byte_cursor.u16 c in
  let* () = guard (machine = 0x3e) "not an x86-64 binary" in
  let _version = Byte_cursor.u32 c in
  let entry = Byte_cursor.u64 c in
  let _phoff = Byte_cursor.u64 c in
  let shoff = Byte_cursor.u64 c in
  let _flags = Byte_cursor.u32 c in
  let _ehsize = Byte_cursor.u16 c in
  let _phentsize = Byte_cursor.u16 c in
  let _phnum = Byte_cursor.u16 c in
  let shentsize = Byte_cursor.u16 c in
  let shnum = Byte_cursor.u16 c in
  let shstrndx = Byte_cursor.u16 c in
  let* () = guard (shentsize = 64) "unexpected e_shentsize" in
  let* () = guard (shoff + (shnum * 64) <= len) "section header table out of range" in
  let* () = guard (shstrndx < shnum) "e_shstrndx out of range" in
  try
    let shs =
      Array.init shnum (fun i ->
          Byte_cursor.seek c (shoff + (i * 64));
          read_sh c)
    in
    let body rs =
      if rs.rs_kind = 8 (* NOBITS *) then String.make rs.rs_size '\000'
      else if rs.rs_off + rs.rs_size > len then
        invalid_arg "section body out of range"
      else String.sub raw rs.rs_off rs.rs_size
    in
    let shstr = body shs.(shstrndx) in
    let name rs = strtab_get shstr rs.rs_name in
    let sections = ref [] in
    let symbols = ref [] in
    Array.iteri
      (fun i rs ->
        if i = 0 || i = shstrndx then ()
        else
          match kind_of_code rs.rs_kind with
          | Image.Symtab ->
              let strtab_data =
                if rs.rs_link < shnum then body shs.(rs.rs_link) else ""
              in
              symbols := decode_symbols ~symtab_data:(body rs) ~strtab_data
          | Image.Strtab when name rs = ".strtab" -> ()
          | kind ->
              sections :=
                {
                  Image.sec_name = name rs;
                  kind;
                  flags = rs.rs_flags;
                  addr = rs.rs_addr;
                  data = body rs;
                  addralign = rs.rs_align;
                  entsize = rs.rs_entsize;
                }
                :: !sections)
      shs;
    Ok { Image.entry; sections = List.rev !sections; symbols = !symbols }
  with
  | Invalid_argument msg -> Error msg
  | Byte_cursor.Out_of_bounds _ -> Error "truncated ELF structure"
