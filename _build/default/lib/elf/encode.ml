(** ELF64 encoder: serialize an {!Image.t} to a well-formed executable file.

    Layout: ELF header, program headers, section contents (in declaration
    order, each aligned and placed so that file offset and virtual address
    agree modulo the page size for loadable sections), then the section
    header table.  A [.shstrtab] is synthesized; when the image carries
    symbols a [.symtab]/[.strtab] pair is appended. *)

open Fetch_util

let page = 0x1000

let ehsize = 64
let phentsize = 56
let shentsize = 64

let sht_null = 0
let sht_progbits = 1
let sht_symtab = 2
let sht_strtab = 3
let sht_nobits = 8

let kind_code = function
  | Image.Progbits -> sht_progbits
  | Image.Nobits -> sht_nobits
  | Image.Symtab -> sht_symtab
  | Image.Strtab -> sht_strtab
  | Image.Other n -> n

(* A string table under construction: offsets of interned strings. *)
module Strtab = struct
  type t = { buf : Byte_buf.t; mutable index : (string * int) list }

  let create () =
    let buf = Byte_buf.create () in
    Byte_buf.u8 buf 0;
    { buf; index = [] }

  let intern t s =
    match List.assoc_opt s t.index with
    | Some off -> off
    | None ->
        let off = Byte_buf.length t.buf in
        Byte_buf.cstring t.buf s;
        t.index <- (s, off) :: t.index;
        off

  let contents t = Byte_buf.contents t.buf
end

let sym_info (s : Image.symbol) =
  let bind = match s.bind with Image.Local -> 0 | Global -> 1 | Weak -> 2 in
  let kind = match s.sym_kind with Image.Notype -> 0 | Object -> 1 | Func -> 2 in
  (bind lsl 4) lor kind

(* Build the .symtab section contents; [shndx_of_addr] resolves the section
   header index holding a given virtual address. *)
let build_symtab (img : Image.t) ~shndx_of_addr =
  let strtab = Strtab.create () in
  let buf = Byte_buf.create () in
  let emit name value size info shndx =
    Byte_buf.u32 buf (Strtab.intern strtab name);
    Byte_buf.u8 buf info;
    Byte_buf.u8 buf 0;
    (* st_other *)
    Byte_buf.u16 buf shndx;
    Byte_buf.u64 buf value;
    Byte_buf.u64 buf size
  in
  emit "" 0 0 0 0;
  (* Local symbols must precede globals; sort accordingly. *)
  let symbols =
    List.stable_sort
      (fun (a : Image.symbol) b ->
        compare (a.bind = Image.Local) (b.bind = Image.Local) * -1)
      img.symbols
  in
  let n_local =
    1 + List.length (List.filter (fun (s : Image.symbol) -> s.bind = Image.Local) symbols)
  in
  List.iter
    (fun (s : Image.symbol) ->
      let shndx = if s.defined then shndx_of_addr s.value else 0 in
      emit s.sym_name s.value s.size (sym_info s) shndx)
    symbols;
  (Byte_buf.contents buf, Strtab.contents strtab, n_local)

type placed = {
  p_name : string;
  p_kind : int;
  p_flags : int;
  p_addr : int;
  p_off : int;
  p_size : int;
  p_link : int;
  p_info : int;
  p_align : int;
  p_entsize : int;
  p_data : string option; (* None for NOBITS *)
}

let encode (img : Image.t) =
  (* Decide which extra sections we synthesize. *)
  let with_symtab = img.symbols <> [] in
  let shstrtab = Strtab.create () in
  (* Section header indexes: 0 = null, user sections, then synthesized. *)
  let user = img.sections in
  let n_user = List.length user in
  let idx_symtab = 1 + n_user in
  let idx_strtab = idx_symtab + 1 in
  let idx_shstrtab = if with_symtab then idx_strtab + 1 else 1 + n_user in
  let shnum = idx_shstrtab + 1 in
  let shndx_of_addr addr =
    let rec go i = function
      | [] -> 0
      | (s : Image.section) :: rest ->
          if
            s.flags land Image.shf_alloc <> 0
            && addr >= s.addr
            && addr <= s.addr + String.length s.data
          then i
          else go (i + 1) rest
    in
    go 1 user
  in
  let symtab_data, strtab_data, symtab_info =
    if with_symtab then build_symtab img ~shndx_of_addr else ("", "", 0)
  in
  (* Lay out file offsets. *)
  let phdr_sections =
    List.filter (fun (s : Image.section) -> s.flags land Image.shf_alloc <> 0) user
  in
  let phnum = List.length phdr_sections in
  let cursor = ref (ehsize + (phnum * phentsize)) in
  let place (s : Image.section) =
    let align = max 1 s.addralign in
    (* Loadable sections keep offset ≡ vaddr (mod page) so a real loader
       could map them; others are just aligned. *)
    let off =
      if s.flags land Image.shf_alloc <> 0 && s.addr <> 0 then begin
        let target = s.addr mod page in
        let c = !cursor in
        let c = if c mod page <= target then c - (c mod page) + target else c - (c mod page) + page + target in
        c
      end
      else
        let c = !cursor in
        if c mod align = 0 then c else c + (align - (c mod align))
    in
    let size = String.length s.data in
    let consumed = match s.kind with Image.Nobits -> 0 | _ -> size in
    cursor := off + consumed;
    {
      p_name = s.sec_name;
      p_kind = kind_code s.kind;
      p_flags = s.flags;
      p_addr = s.addr;
      p_off = off;
      p_size = size;
      p_link = 0;
      p_info = 0;
      p_align = align;
      p_entsize = s.entsize;
      p_data = (match s.kind with Image.Nobits -> None | _ -> Some s.data);
    }
  in
  let placed_user = List.map place user in
  let place_extra name kind data ~link ~info ~entsize =
    let off = !cursor in
    cursor := off + String.length data;
    {
      p_name = name;
      p_kind = kind;
      p_flags = 0;
      p_addr = 0;
      p_off = off;
      p_size = String.length data;
      p_link = link;
      p_info = info;
      p_align = 1;
      p_entsize = entsize;
      p_data = Some data;
    }
  in
  let placed_extra =
    if with_symtab then begin
      (* order matters: place_extra advances the layout cursor *)
      let p_symtab =
        place_extra ".symtab" sht_symtab symtab_data ~link:idx_strtab
          ~info:symtab_info ~entsize:24
      in
      let p_strtab =
        place_extra ".strtab" sht_strtab strtab_data ~link:0 ~info:0 ~entsize:0
      in
      [ p_symtab; p_strtab ]
    end
    else []
  in
  (* shstrtab: intern all names (including its own). *)
  let all_placed = placed_user @ placed_extra in
  List.iter (fun p -> ignore (Strtab.intern shstrtab p.p_name)) all_placed;
  ignore (Strtab.intern shstrtab ".shstrtab");
  let shstrtab_data = Strtab.contents shstrtab in
  let placed_shstr =
    place_extra ".shstrtab" sht_strtab shstrtab_data ~link:0 ~info:0 ~entsize:0
  in
  let all_placed = all_placed @ [ placed_shstr ] in
  (* Section header table goes last, 8-aligned. *)
  let shoff =
    let c = !cursor in
    if c mod 8 = 0 then c else c + (8 - (c mod 8))
  in
  let total = shoff + (shnum * shentsize) in
  let out = Byte_buf.create ~capacity:total () in
  (* ELF header *)
  Byte_buf.string out "\x7fELF";
  Byte_buf.u8 out 2;
  (* 64-bit *)
  Byte_buf.u8 out 1;
  (* little endian *)
  Byte_buf.u8 out 1;
  (* version *)
  Byte_buf.u8 out 0;
  (* System V *)
  Byte_buf.fill out ~count:8 ~byte:0;
  Byte_buf.u16 out 2;
  (* ET_EXEC *)
  Byte_buf.u16 out 0x3e;
  (* EM_X86_64 *)
  Byte_buf.u32 out 1;
  Byte_buf.u64 out img.entry;
  Byte_buf.u64 out ehsize;
  (* e_phoff *)
  Byte_buf.u64 out shoff;
  Byte_buf.u32 out 0;
  (* e_flags *)
  Byte_buf.u16 out ehsize;
  Byte_buf.u16 out phentsize;
  Byte_buf.u16 out phnum;
  Byte_buf.u16 out shentsize;
  Byte_buf.u16 out shnum;
  Byte_buf.u16 out idx_shstrtab;
  (* Program headers: one PT_LOAD per alloc section. *)
  List.iter2
    (fun (s : Image.section) p ->
      ignore s;
      (* Segment flags: R=4, W=2, X=1. *)
      let flags =
        4
        lor (if p.p_flags land Image.shf_write <> 0 then 2 else 0)
        lor if p.p_flags land Image.shf_execinstr <> 0 then 1 else 0
      in
      Byte_buf.u32 out 1;
      (* PT_LOAD *)
      Byte_buf.u32 out flags;
      Byte_buf.u64 out p.p_off;
      Byte_buf.u64 out p.p_addr;
      Byte_buf.u64 out p.p_addr;
      Byte_buf.u64 out p.p_size;
      Byte_buf.u64 out p.p_size;
      Byte_buf.u64 out page)
    phdr_sections
    (List.filter (fun p -> p.p_flags land Image.shf_alloc <> 0) placed_user);
  (* Section contents. *)
  List.iter
    (fun p ->
      match p.p_data with
      | None -> ()
      | Some data ->
          let here = Byte_buf.length out in
          if here > p.p_off then invalid_arg "Encode: layout overlap";
          Byte_buf.fill out ~count:(p.p_off - here) ~byte:0;
          Byte_buf.string out data)
    all_placed;
  (* Section header table. *)
  let here = Byte_buf.length out in
  Byte_buf.fill out ~count:(shoff - here) ~byte:0;
  let emit_sh ~name ~kind ~flags ~addr ~off ~size ~link ~info ~align ~entsize =
    Byte_buf.u32 out name;
    Byte_buf.u32 out kind;
    Byte_buf.u64 out flags;
    Byte_buf.u64 out addr;
    Byte_buf.u64 out off;
    Byte_buf.u64 out size;
    Byte_buf.u32 out link;
    Byte_buf.u32 out info;
    Byte_buf.u64 out align;
    Byte_buf.u64 out entsize
  in
  emit_sh ~name:0 ~kind:sht_null ~flags:0 ~addr:0 ~off:0 ~size:0 ~link:0
    ~info:0 ~align:0 ~entsize:0;
  List.iter
    (fun p ->
      emit_sh
        ~name:(Strtab.intern shstrtab p.p_name)
        ~kind:p.p_kind ~flags:p.p_flags ~addr:p.p_addr ~off:p.p_off
        ~size:p.p_size ~link:p.p_link ~info:p.p_info ~align:p.p_align
        ~entsize:p.p_entsize)
    all_placed;
  Byte_buf.contents out
