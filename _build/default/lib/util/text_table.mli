(** Plain-text table rendering for the experiment drivers.

    Renders the paper's tables (I–V) and Figure 5 as aligned monospace
    rows so bench output can be diffed against EXPERIMENTS.md. *)

type align = Left | Right

(** [render ~header rows] lays out all rows under [header] with column
    widths fitted to the longest cell.  Numeric-looking cells are
    right-aligned unless [aligns] overrides per column. *)
val render : ?aligns:align array -> header:string list -> string list list -> string

(** [print] is [render] piped to stdout. *)
val print : ?aligns:align array -> header:string list -> string list list -> unit

(** [pct num den] is ["-"] when [den = 0], else [100 * num / den] with two
    decimals. *)
val pct : int -> int -> string

(** [thousands n] is [n / 1000] with two decimals, as Table III prints. *)
val thousands : int -> string
