(** Hex rendering helpers for CLI output and test failure messages. *)

let of_string s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

(** Classic 16-bytes-per-line dump, addresses starting at [base]. *)
let dump ?(base = 0) s =
  let buf = Buffer.create (String.length s * 4) in
  let n = String.length s in
  let line_start = ref 0 in
  while !line_start < n do
    let upto = min n (!line_start + 16) in
    Buffer.add_string buf (Printf.sprintf "%08x  " (base + !line_start));
    for i = !line_start to upto - 1 do
      Buffer.add_string buf (Printf.sprintf "%02x " (Char.code s.[i]))
    done;
    Buffer.add_char buf '\n';
    line_start := upto
  done;
  Buffer.contents buf
