lib/util/byte_cursor.ml: Char Int32 Int64 String
