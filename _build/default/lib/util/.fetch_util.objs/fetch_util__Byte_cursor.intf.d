lib/util/byte_cursor.mli:
