lib/util/hex.mli:
