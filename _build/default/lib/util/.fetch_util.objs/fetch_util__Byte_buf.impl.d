lib/util/byte_buf.ml: Bytes Char Int32 Int64 String
