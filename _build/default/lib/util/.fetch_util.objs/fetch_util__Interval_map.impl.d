lib/util/interval_map.ml: Int List Map Option
