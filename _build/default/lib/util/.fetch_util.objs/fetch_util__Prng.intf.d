lib/util/prng.mli:
