lib/util/hex.ml: Buffer Char Printf String
