(** Growable little-endian byte buffer with random-access patching.

    Used by every encoder in the project (ELF sections, x86 machine code,
    DWARF CFI).  Values are appended at the end; previously written bytes can
    be patched in place, which is how label/relocation fixups are resolved. *)

type t = {
  mutable data : Bytes.t;
  mutable len : int;
}

let create ?(capacity = 64) () =
  { data = Bytes.create (max capacity 16); len = 0 }

let length t = t.len

let ensure t extra =
  let needed = t.len + extra in
  if needed > Bytes.length t.data then begin
    let cap = ref (Bytes.length t.data) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let data = Bytes.create !cap in
    Bytes.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let u8 t v =
  ensure t 1;
  Bytes.unsafe_set t.data t.len (Char.chr (v land 0xff));
  t.len <- t.len + 1

let u16 t v =
  ensure t 2;
  Bytes.set_uint16_le t.data t.len (v land 0xffff);
  t.len <- t.len + 2

let u32 t v =
  ensure t 4;
  Bytes.set_int32_le t.data t.len (Int32.of_int (v land 0xffffffff));
  t.len <- t.len + 4

let u64 t v =
  ensure t 8;
  Bytes.set_int64_le t.data t.len (Int64.of_int v);
  t.len <- t.len + 8

let i8 t v = u8 t (v land 0xff)
let i16 t v = u16 t (v land 0xffff)
let i32 t v = u32 t (v land 0xffffffff)

let i64 t v =
  ensure t 8;
  Bytes.set_int64_le t.data t.len v;
  t.len <- t.len + 8

let bytes t b =
  ensure t (Bytes.length b);
  Bytes.blit b 0 t.data t.len (Bytes.length b);
  t.len <- t.len + Bytes.length b

let string t s =
  ensure t (String.length s);
  Bytes.blit_string s 0 t.data t.len (String.length s);
  t.len <- t.len + String.length s

let cstring t s =
  string t s;
  u8 t 0

let fill t ~count ~byte =
  ensure t count;
  Bytes.fill t.data t.len count (Char.chr (byte land 0xff));
  t.len <- t.len + count

let pad_to t ~align ~byte =
  let rem = t.len mod align in
  if rem <> 0 then fill t ~count:(align - rem) ~byte

let patch_u8 t ~at v =
  if at < 0 || at >= t.len then invalid_arg "Byte_buf.patch_u8";
  Bytes.set t.data at (Char.chr (v land 0xff))

let patch_u32 t ~at v =
  if at < 0 || at + 4 > t.len then invalid_arg "Byte_buf.patch_u32";
  Bytes.set_int32_le t.data at (Int32.of_int (v land 0xffffffff))

let patch_u64 t ~at v =
  if at < 0 || at + 8 > t.len then invalid_arg "Byte_buf.patch_u64";
  Bytes.set_int64_le t.data at (Int64.of_int v)

let contents t = Bytes.sub_string t.data 0 t.len

(* ULEB128 / SLEB128, as used throughout DWARF. *)

let uleb128 t v =
  if v < 0 then invalid_arg "Byte_buf.uleb128: negative";
  let rec go v =
    let b = v land 0x7f in
    let v = v lsr 7 in
    if v = 0 then u8 t b
    else begin
      u8 t (b lor 0x80);
      go v
    end
  in
  go v

let sleb128 t v =
  let rec go v =
    let b = v land 0x7f in
    let v = v asr 7 in
    let sign_clear = b land 0x40 = 0 in
    if (v = 0 && sign_clear) || (v = -1 && not sign_clear) then u8 t b
    else begin
      u8 t (b lor 0x80);
      go v
    end
  in
  go v
