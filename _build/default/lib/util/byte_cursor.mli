(** Little-endian read cursor over an immutable string.

    The decoder counterpart of {!Byte_buf}.  All reads advance the cursor
    and raise {!Out_of_bounds} past the end, which decoders (notably the
    x86 disassembler and the eh_frame parser) catch to report truncated
    input. *)

type t

exception Out_of_bounds of { pos : int; want : int; len : int }

(** [of_string ?pos ?len data] is a cursor over the window
    [\[pos, pos+len)] of [data] (defaults: the whole string). *)
val of_string : ?pos:int -> ?len:int -> string -> t

(** [sub t ~pos ~len] is an independent cursor over a sub-window, with
    positions relative to [t]'s window. *)
val sub : t -> pos:int -> len:int -> t

(** Current position, relative to the window start. *)
val pos : t -> int

(** Window length. *)
val length : t -> int

(** Bytes left to read. *)
val remaining : t -> int

val eof : t -> bool
val seek : t -> int -> unit
val advance : t -> int -> unit

(** {1 Reads} — all little-endian, all advancing *)

val u8 : t -> int
val u16 : t -> int
val u32 : t -> int
val u64 : t -> int
val i8 : t -> int
val i16 : t -> int
val i32 : t -> int
val i64 : t -> int64

(** [string t n] reads exactly [n] bytes. *)
val string : t -> int -> string

(** Reads up to (and consuming) a NUL terminator. *)
val cstring : t -> string

val uleb128 : t -> int
val sleb128 : t -> int
