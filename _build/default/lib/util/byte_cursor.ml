(** Little-endian read cursor over an immutable string.

    The decoder counterpart of {!Byte_buf}.  All reads advance the cursor and
    raise {!Out_of_bounds} past the end, which decoders (notably the x86
    disassembler and the eh_frame parser) catch to report truncated input. *)

exception Out_of_bounds of { pos : int; want : int; len : int }

type t = {
  data : string;
  off : int;  (** start of the window inside [data] *)
  limit : int;  (** one past the last readable byte, relative to [data] *)
  mutable pos : int;  (** absolute position inside [data] *)
}

let of_string ?(pos = 0) ?len data =
  let limit =
    match len with None -> String.length data | Some l -> pos + l
  in
  if pos < 0 || limit > String.length data || pos > limit then
    invalid_arg "Byte_cursor.of_string";
  { data; off = pos; limit; pos }

let sub t ~pos ~len =
  let abs = t.off + pos in
  if abs < t.off || abs + len > t.limit then
    raise (Out_of_bounds { pos; want = len; len = t.limit - t.off });
  { data = t.data; off = abs; limit = abs + len; pos = abs }

let pos t = t.pos - t.off
let length t = t.limit - t.off
let remaining t = t.limit - t.pos
let eof t = t.pos >= t.limit

let seek t p =
  let abs = t.off + p in
  if abs < t.off || abs > t.limit then
    raise (Out_of_bounds { pos = p; want = 0; len = length t });
  t.pos <- abs

let advance t n = seek t (pos t + n)

let check t n =
  if t.pos + n > t.limit then
    raise (Out_of_bounds { pos = pos t; want = n; len = length t })

let u8 t =
  check t 1;
  let v = Char.code (String.unsafe_get t.data t.pos) in
  t.pos <- t.pos + 1;
  v

let u16 t =
  check t 2;
  let v = String.get_uint16_le t.data t.pos in
  t.pos <- t.pos + 2;
  v

let u32 t =
  check t 4;
  let v = Int32.to_int (String.get_int32_le t.data t.pos) land 0xffffffff in
  t.pos <- t.pos + 4;
  v

let u64 t =
  check t 8;
  let v = Int64.to_int (String.get_int64_le t.data t.pos) in
  t.pos <- t.pos + 8;
  v

let i8 t =
  let v = u8 t in
  if v >= 0x80 then v - 0x100 else v

let i16 t =
  let v = u16 t in
  if v >= 0x8000 then v - 0x10000 else v

let i32 t =
  let v = u32 t in
  if v >= 0x80000000 then v - 0x100000000 else v

let i64 t =
  check t 8;
  let v = String.get_int64_le t.data t.pos in
  t.pos <- t.pos + 8;
  v

let string t n =
  check t n;
  let s = String.sub t.data t.pos n in
  t.pos <- t.pos + n;
  s

let cstring t =
  let start = t.pos in
  let rec find p = if p >= t.limit || t.data.[p] = '\000' then p else find (p + 1) in
  let e = find start in
  if e >= t.limit then raise (Out_of_bounds { pos = pos t; want = 1; len = length t });
  t.pos <- e + 1;
  String.sub t.data start (e - start)

let uleb128 t =
  let rec go shift acc =
    let b = u8 t in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let sleb128 t =
  let rec go shift acc =
    let b = u8 t in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    let shift = shift + 7 in
    if b land 0x80 <> 0 then go shift acc
    else if shift < 63 && b land 0x40 <> 0 then acc lor (-1 lsl shift)
    else acc
  in
  go 0 0
