(** Plain-text table rendering for the experiment drivers.

    Renders the paper's tables (I–V) and Figure 5 as aligned monospace rows
    so bench output can be diffed against EXPERIMENTS.md. *)

type align = Left | Right

(** [render ~header rows] lays out all rows under [header] with column
    widths fitted to the longest cell.  Numeric-looking cells are
    right-aligned unless [aligns] overrides. *)
let render ?aligns ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let widths =
    Array.init ncols (fun i ->
        List.fold_left (fun acc r -> max acc (String.length (cell r i))) 0 all)
  in
  let numeric s =
    s <> ""
    && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '%' || c = ',') s
  in
  let align_of i c =
    match aligns with
    | Some a when i < Array.length a -> a.(i)
    | _ -> if numeric c then Right else Left
  in
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i c ->
        let w = widths.(i) in
        let padded =
          match align_of i c with
          | Left -> Printf.sprintf "%-*s" w c
          | Right -> Printf.sprintf "%*s" w c
        in
        Buffer.add_string buf padded;
        if i < ncols - 1 then Buffer.add_string buf "  ")
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let rule = Array.fold_left (fun acc w -> acc + w) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make rule '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?aligns ~header rows = print_string (render ?aligns ~header rows)

(** Format helpers shared by experiment drivers. *)
let pct num den = if den = 0 then "-" else Printf.sprintf "%.2f" (100.0 *. float_of_int num /. float_of_int den)

let thousands n = Printf.sprintf "%.2f" (float_of_int n /. 1000.0)
