(** Deterministic pseudo-random generator (splitmix64).

    Every corpus in the evaluation is generated from an explicit seed so that
    experiments, tests and benchmarks are exactly reproducible run-to-run. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is uniform in [\[0, bound)]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  (* shift by 2 keeps the value within OCaml's 63-bit int range *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
let range t lo hi =
  if hi < lo then invalid_arg "Prng.range";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

(** [chance t p] is true with probability [p]. *)
let chance t p = float t < p

let bool t = chance t 0.5

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice";
  arr.(int t (Array.length arr))

let choice_list t l = choice t (Array.of_list l)

(** Weighted choice: [weighted t [(w1, a); (w2, b)]] picks [a] with
    probability [w1 / (w1 + w2)]. *)
let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Prng.weighted";
  let x = float t *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.weighted: empty"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0.0 pairs

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Derive an independent stream, e.g. one per generated binary. *)
let split t =
  let s = next_int64 t in
  { state = s }
