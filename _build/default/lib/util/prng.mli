(** Deterministic pseudo-random generator (splitmix64).

    Every corpus in the evaluation is generated from an explicit seed so
    that experiments, tests and benchmarks are exactly reproducible
    run-to-run. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]; [bound] must be positive. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
val range : t -> int -> int -> int

(** Uniform in [\[0, 1)]. *)
val float : t -> float

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

val bool : t -> bool
val choice : t -> 'a array -> 'a
val choice_list : t -> 'a list -> 'a

(** Weighted choice: [weighted t [(w1, a); (w2, b)]] picks [a] with
    probability [w1 / (w1 + w2)]. *)
val weighted : t -> (float * 'a) list -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Derive an independent stream, e.g. one per generated binary. *)
val split : t -> t
