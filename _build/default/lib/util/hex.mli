(** Hex rendering helpers for CLI output and test failure messages. *)

(** Lowercase hex of every byte, no separators. *)
val of_string : string -> string

(** Classic 16-bytes-per-line dump; addresses start at [base]. *)
val dump : ?base:int -> string -> string
