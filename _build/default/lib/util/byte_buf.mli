(** Growable little-endian byte buffer with random-access patching.

    Used by every encoder in the project (ELF sections, x86 machine code,
    DWARF CFI).  Values are appended at the end; previously written bytes
    can be patched in place, which is how label/relocation fixups are
    resolved. *)

type t

(** [create ?capacity ()] is an empty buffer. *)
val create : ?capacity:int -> unit -> t

(** Number of bytes written so far. *)
val length : t -> int

(** {1 Appending} *)

val u8 : t -> int -> unit
val u16 : t -> int -> unit
val u32 : t -> int -> unit
val u64 : t -> int -> unit
val i8 : t -> int -> unit
val i16 : t -> int -> unit
val i32 : t -> int -> unit
val i64 : t -> int64 -> unit
val bytes : t -> Bytes.t -> unit
val string : t -> string -> unit

(** [cstring t s] appends [s] followed by a NUL byte. *)
val cstring : t -> string -> unit

(** [fill t ~count ~byte] appends [count] copies of [byte]. *)
val fill : t -> count:int -> byte:int -> unit

(** [pad_to t ~align ~byte] appends [byte] until [length t] is a multiple
    of [align]. *)
val pad_to : t -> align:int -> byte:int -> unit

(** {1 Patching}

    All patch functions raise [Invalid_argument] when the target range is
    not already written. *)

val patch_u8 : t -> at:int -> int -> unit
val patch_u32 : t -> at:int -> int -> unit
val patch_u64 : t -> at:int -> int -> unit

(** Snapshot of the written bytes. *)
val contents : t -> string

(** {1 DWARF varints} *)

(** Unsigned LEB128; raises [Invalid_argument] on negative input. *)
val uleb128 : t -> int -> unit

(** Signed LEB128. *)
val sleb128 : t -> int -> unit
