(** Reference collection (§IV-E): the conservative super-set of potential
    function pointers, and the reference census Algorithm 1 needs.

    Pointer candidates come from two sources: every consecutive 8-byte
    window in the data sections (and, optionally, non-disassembled code
    regions), and every constant operand in the disassembled code
    (immediates, absolute displacements, resolved RIP-relative targets). *)

open Fetch_x86
open Fetch_analysis

type kind =
  | Data_pointer of int  (** found at this data address *)
  | Code_constant of int  (** constant operand of the instruction here *)
  | Call_target of int  (** direct call site *)
  | Jump_target of int * int  (** jump site, owning function entry *)

type t = {
  by_target : (int, kind list) Hashtbl.t;
}

let add t target kind =
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.by_target target) in
  Hashtbl.replace t.by_target target (kind :: prev)

let refs_to t target =
  Option.value ~default:[] (Hashtbl.find_opt t.by_target target)

(* Scan every consecutive 8-byte window of a section for text pointers. *)
let scan_section_windows loaded t (s : Fetch_elf.Image.section) =
  let n = String.length s.data in
  for i = 0 to n - 8 do
    let v = Int64.to_int (String.get_int64_le s.data i) in
    if Loaded.in_text loaded v then add t v (Data_pointer (s.addr + i))
  done

(* Constant operands of one decoded instruction. *)
let insn_constants ~addr ~len insn =
  let consts = ref [] in
  let push v = consts := v :: !consts in
  let mem (m : Insn.mem) =
    if m.rip_rel then push (addr + len + m.disp)
    else if m.base = None && m.index = None then push m.disp
    else if m.index <> None && m.base = None then push m.disp
  in
  let op = function
    | Insn.Imm v -> push v
    | Insn.Mem m -> mem m
    | Insn.Reg _ -> ()
  in
  (match insn with
  | Insn.Mov (_, a, b) ->
      op a;
      op b
  | Insn.Movabs (_, v) -> push v
  | Insn.Lea (_, m) -> mem m
  | Insn.Arith (_, _, a, b) ->
      op a;
      op b
  | Insn.Imul (_, s) -> op s
  | Insn.Movsxd (_, m) -> mem m
  | Insn.Movzx (_, _, o') | Insn.Movsx (_, _, o') | Insn.Cmov (_, _, o') ->
      op o'
  | Insn.Call_ind o | Insn.Jmp_ind o -> op o
  | Insn.Push _ | Insn.Pop _ | Insn.Test _ | Insn.Shift _ | Insn.Neg _
  | Insn.Inc _ | Insn.Dec _ | Insn.Setcc _ | Insn.Div _ | Insn.Idiv _
  | Insn.Mul _ | Insn.Cqo | Insn.Cdq | Insn.Not _ | Insn.Xchg _
  | Insn.Push_imm _ | Insn.Test_imm _ | Insn.Call _ | Insn.Jmp _
  | Insn.Jmp_short _ | Insn.Jcc _ | Insn.Jcc_short _ | Insn.Ret
  | Insn.Leave | Insn.Nop _ | Insn.Endbr64 | Insn.Ud2 | Insn.Int3
  | Insn.Hlt | Insn.Syscall | Insn.Cpuid ->
      ());
  !consts

(* Walk every decoded instruction of the recursive result. *)
let scan_code loaded t (res : Recursive.result) =
  Fetch_util.Interval_map.iter res.insn_spans (fun ~lo ~hi () ->
      let rec go addr =
        if addr < hi then
          match Loaded.insn_at loaded addr with
          | Some (insn, len) ->
              List.iter
                (fun v ->
                  if Loaded.in_text loaded v then add t v (Code_constant addr))
                (insn_constants ~addr ~len insn);
              go (addr + len)
          | None -> ()
      in
      go lo)

let scan_calls_and_jumps t (res : Recursive.result) =
  Hashtbl.iter
    (fun entry (f : Recursive.func) ->
      List.iter (fun (site, target) -> add t target (Call_target site)) f.calls;
      List.iter
        (fun (site, _, target) -> add t target (Jump_target (site, entry)))
        f.all_jump_sites;
      List.iter
        (fun (_, targets) ->
          List.iter (fun tg -> add t tg (Jump_target (entry, entry))) targets)
        f.table_targets)
    res.funcs

(** Collect all references in the binary given the current disassembly. *)
let collect loaded (res : Recursive.result) =
  let t = { by_target = Hashtbl.create 1024 } in
  List.iter
    (fun (s : Fetch_elf.Image.section) ->
      (* data sections only: unwinding metadata is not program data *)
      let is_data =
        s.flags land Fetch_elf.Image.shf_alloc <> 0
        && s.flags land Fetch_elf.Image.shf_execinstr = 0
        && not
             (List.mem s.sec_name
                [ ".eh_frame"; ".eh_frame_hdr"; ".gcc_except_table" ])
      in
      if is_data then scan_section_windows loaded t s)
    loaded.Loaded.image.sections;
  scan_code loaded t res;
  scan_calls_and_jumps t res;
  t

(** Candidate pointers for §IV-E: data pointers and code constants (not
    call/jump targets — those are already handled by recursion). *)
let pointer_candidates t =
  Hashtbl.fold
    (fun target kinds acc ->
      if
        List.exists
          (function
            | Data_pointer _ | Code_constant _ -> true
            | Call_target _ | Jump_target _ -> false)
          kinds
      then target :: acc
      else acc)
    t.by_target []
  |> List.sort_uniq compare

(** Is [target] referenced by anything other than jumps from [entry]?
    (Criterion 3 of Algorithm 1.) *)
let referenced_outside_jumps_of t ~entry target =
  List.exists
    (function
      | Jump_target (_, owner) -> owner <> entry
      | Data_pointer _ | Code_constant _ | Call_target _ -> true)
    (refs_to t target)

(** Is [target] referenced at all (HasRefTo)? *)
let has_ref t target = refs_to t target <> []
