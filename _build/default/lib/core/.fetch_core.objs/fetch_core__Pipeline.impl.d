lib/core/pipeline.ml: Callconv Fetch_analysis Fetch_elf Hashtbl List Loaded Recursive Refs Result Tailcall Xref
