lib/core/xref.mli: Fetch_analysis Fetch_util
