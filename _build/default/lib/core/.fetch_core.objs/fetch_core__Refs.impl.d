lib/core/refs.ml: Fetch_analysis Fetch_elf Fetch_util Fetch_x86 Hashtbl Insn Int64 List Loaded Option Recursive String
