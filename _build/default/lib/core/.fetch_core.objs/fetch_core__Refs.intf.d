lib/core/refs.mli: Fetch_analysis
