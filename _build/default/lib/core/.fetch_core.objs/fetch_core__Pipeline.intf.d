lib/core/pipeline.mli: Fetch_analysis Fetch_elf Stdlib Tailcall
