lib/core/xref.ml: Callconv Fetch_analysis Fetch_util Fetch_x86 Hashtbl List Loaded Recursive Refs Semantics
