lib/core/tailcall.mli: Fetch_analysis
