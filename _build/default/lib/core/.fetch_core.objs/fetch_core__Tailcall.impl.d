lib/core/tailcall.ml: Callconv Fetch_analysis Fetch_dwarf Hashtbl List Loaded Recursive Refs
