(** Models of the six non-FDE tools in Table III.  On stripped binaries
    these tools seed from the program entry point (plus any surviving
    symbols) and grow coverage with pattern matching — the fundamental
    limitation §II-B describes. *)

open Fetch_analysis

let seeds loaded =
  (loaded.Loaded.image.entry :: loaded.Loaded.symbol_starts)
  |> List.sort_uniq compare

(* Iterate: scan for prologues in the remaining gaps, recursively
   disassemble from matches, repeat. *)
let rec_plus_patterns ?(engine = Recursive.safe_config) ~strictness ~every_byte
    ~iterations loaded =
  let rec loop i seed_set res =
    if i >= iterations then res
    else
      let found =
        Prologue.scan loaded ~strictness ~every_byte
          (Linear_sweep.gaps loaded ~covered:res.Recursive.insn_spans)
      in
      let fresh =
        List.filter (fun s -> not (Hashtbl.mem res.Recursive.funcs s)) found
      in
      if fresh = [] then res
      else
        let seed_set = List.sort_uniq compare (fresh @ seed_set) in
        loop (i + 1) seed_set (Recursive.run ~config:engine loaded ~seeds:seed_set)
  in
  let s = seeds loaded in
  loop 0 s (Recursive.run ~config:engine loaded ~seeds:s)

(** DYNINST: capable recursive disassembly (jump tables, accurate noreturn)
    plus iterated strict prologue matching over every gap byte. *)
module Dyninst = struct
  let detect loaded =
    let res =
      rec_plus_patterns ~strictness:Prologue.Strict ~every_byte:true
        ~iterations:3 loaded
    in
    Recursive.starts res
end

(** BAP: weaker recursive pass (no jump-table resolution, no noreturn
    analysis) plus a BYTEWEIGHT-style loose matcher over every gap byte —
    high coverage of patterns, very many false positives. *)
module Bap = struct
  let engine =
    {
      Recursive.safe_config with
      resolve_jump_tables = false;
      noreturn_aware = false;
    }

  let detect loaded =
    let res =
      rec_plus_patterns ~engine ~strictness:Prologue.Loose ~every_byte:true
        ~iterations:2 loaded
    in
    Recursive.starts res
end

(** RADARE2: conservative — one pass of strict prologue matching at gap
    starts only; low false positives, many misses. *)
module Radare2 = struct
  let detect loaded =
    let res =
      rec_plus_patterns ~strictness:Prologue.Strict ~every_byte:false
        ~iterations:1 loaded
    in
    Recursive.starts res
end

(** IDA Pro: like RADARE2 but iterated and with broader (still strict-ish)
    pattern anchoring at padding boundaries; also splits thunks. *)
module Ida = struct
  let detect loaded =
    let res =
      rec_plus_patterns ~strictness:Prologue.Loose ~every_byte:false
        ~iterations:4 loaded
    in
    let thunk = Heuristics.thunk_targets loaded res in
    List.sort_uniq compare (thunk @ Recursive.starts res)
end

(** Binary Ninja: aggressive — iterated loose matching over every gap byte
    plus alignment-gap starts and tail-call splitting; best coverage of
    the non-FDE tools, at a high false-positive cost. *)
module Binja = struct
  let detect loaded =
    let res =
      rec_plus_patterns ~strictness:Prologue.Loose ~every_byte:true
        ~iterations:4 loaded
    in
    let extra =
      Heuristics.alignment_starts loaded res @ Heuristics.tcall_starts_angr res
    in
    List.sort_uniq compare (extra @ Recursive.starts res)
end

(** NUCLEUS: compiler-agnostic — linear sweep of all executable bytes,
    grouping of blocks connected by direct control flow; function starts
    are call targets plus each group's lowest address (§II-B). *)
module Nucleus = struct
  module Uf = struct
    (* union-find over instruction addresses *)
    let create () = Hashtbl.create 4096

    let rec find t x =
      match Hashtbl.find_opt t x with
      | None -> x
      | Some p ->
          let r = find t p in
          if r <> p then Hashtbl.replace t x r;
          r

    let union t a b =
      let ra = find t a and rb = find t b in
      if ra <> rb then Hashtbl.replace t (max ra rb) (min ra rb)
  end

  let detect loaded =
    let uf = Uf.create () in
    let call_targets = ref [] in
    let insn_addrs = ref [] in
    let is_pad = function
      | Fetch_x86.Insn.Nop _ | Fetch_x86.Insn.Int3 -> true
      | _ -> false
    in
    List.iter
      (fun (lo, hi) ->
        let insns, _junk = Linear_sweep.decode_range loaded ~lo ~hi in
        List.iter
          (fun (addr, len, insn) ->
            if not (is_pad insn) then begin
              insn_addrs := addr :: !insn_addrs;
              match Fetch_x86.Semantics.flow insn with
              | Fetch_x86.Semantics.Fall ->
                  Uf.union uf addr (addr + len)
              | Fetch_x86.Semantics.Callf (Fetch_x86.Semantics.Direct t) ->
                  call_targets := t :: !call_targets;
                  Uf.union uf addr (addr + len)
              | Fetch_x86.Semantics.Callf (Fetch_x86.Semantics.Indirect _) ->
                  Uf.union uf addr (addr + len)
              | Fetch_x86.Semantics.Cond t ->
                  Uf.union uf addr (addr + len);
                  if Loaded.in_text loaded t then Uf.union uf addr t
              | Fetch_x86.Semantics.Jump (Fetch_x86.Semantics.Direct t) ->
                  if Loaded.in_text loaded t then Uf.union uf addr t
              | Fetch_x86.Semantics.Jump (Fetch_x86.Semantics.Indirect _)
              | Fetch_x86.Semantics.Ret | Fetch_x86.Semantics.Halt ->
                  ()
            end)
          insns)
      (Loaded.text_ranges loaded);
    (* lowest address of each connected group *)
    let heads = Hashtbl.create 256 in
    let insn_set = Hashtbl.create 4096 in
    List.iter (fun a -> Hashtbl.replace insn_set a ()) !insn_addrs;
    List.iter
      (fun a ->
        let r = Uf.find uf a in
        match Hashtbl.find_opt heads r with
        | Some m when m <= a -> ()
        | _ -> Hashtbl.replace heads r a)
      !insn_addrs;
    let group_heads = Hashtbl.fold (fun _ m acc -> m :: acc) heads [] in
    let calls = List.filter (Hashtbl.mem insn_set) !call_targets in
    List.sort_uniq compare (calls @ group_heads)
end
