(** Model of GHIDRA's function-start strategy stack (§IV-C/D).

    FDE starts + symbols → recursive disassembly → control-flow repairing
    (default on; removes byte-adjacent unreferenced starts after
    non-returning functions, with over-approximate noreturn knowledge) →
    thunk splitting (default on) → strict prologue matching → optional
    heuristic tail-call detection (off by default, as in the product). *)

type config = {
  recursive : bool;
  cfr : bool;
  thunks : bool;
  fsig : bool;
  tcall : bool;
}

val default : config

val detect : ?config:config -> Fetch_analysis.Loaded.t -> int list
