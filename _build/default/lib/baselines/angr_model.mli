(** Model of ANGR's CFGFast function-start strategy stack (§IV-C/D).

    FDE starts + symbols → recursive disassembly → function merging
    (default on; deletes true starts) → alignment handling (first
    non-padding instruction of padding-led gaps) → loose prologue
    matching over every gap byte → optional heuristic tail-call
    detection → optional linear gap scan. *)

type config = {
  recursive : bool;
  merge : bool;
  alignment : bool;
  fsig : bool;
  tcall : bool;
  scan : bool;
}

val default : config

val detect : ?config:config -> Fetch_analysis.Loaded.t -> int list
