(** Model of GHIDRA's function-start strategy stack (§IV-C/D).

    FDE starts + symbols → recursive disassembly → control-flow repairing
    (default on; removes unreferenced starts after non-returning functions,
    using its over-approximate noreturn knowledge) → thunk splitting
    (default on) → prologue matching (strict patterns, gap starts) →
    optional heuristic tail-call detection (off by default). *)

open Fetch_analysis

type config = {
  recursive : bool;
  cfr : bool;
  thunks : bool;
  fsig : bool;
  tcall : bool;
}

let default = { recursive = true; cfr = true; thunks = true; fsig = true; tcall = false }

(* Ghidra's noreturn view over-approximates: conditionally-noreturn
   functions count as plain noreturn. *)
let ghidra_noreturn (res : Recursive.result) e =
  Hashtbl.mem res.noreturn e || Hashtbl.mem res.cond_noreturn e

let detect ?(config = default) loaded =
  let seeds =
    loaded.Loaded.fde_starts @ loaded.Loaded.symbol_starts
    |> List.sort_uniq compare
  in
  if not config.recursive then seeds
  else begin
    let res = Recursive.run loaded ~seeds in
    let starts = Recursive.starts res in
    let starts =
      if config.cfr then
        Heuristics.control_flow_repair loaded res
          ~noreturn:(ghidra_noreturn res) starts
      else starts
    in
    let starts =
      if config.thunks then Heuristics.thunk_targets loaded res @ starts
      else starts
    in
    let starts =
      if config.fsig then
        let found =
          Heuristics.prologue_starts loaded res ~strictness:Prologue.Strict
            ~every_byte:false
        in
        found @ starts
      else starts
    in
    let starts =
      if config.tcall then
        Heuristics.tcall_starts_ghidra res ~threshold:48 @ starts
      else starts
    in
    List.sort_uniq compare starts
  end
