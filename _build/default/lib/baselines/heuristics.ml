(** The heuristic passes existing tools layer on top of recursive
    disassembly (§II-B, §IV-C/D): control-flow repair, thunk splitting,
    function merging, alignment scanning, prologue matching, heuristic
    tail-call detection and linear gap scanning.

    Each pass takes the committed engine result and returns starts to add
    or remove; the tool models in this library compose them per tool. *)

open Fetch_x86
open Fetch_analysis

(* Claimed-byte map from an engine result (instruction spans). *)
let claimed (res : Recursive.result) = res.insn_spans

let gaps loaded (res : Recursive.result) =
  Linear_sweep.gaps loaded ~covered:(claimed res)

(* Reference census restricted to control flow (calls/jumps) — what the
   "reached by other control flows" tests of Ghidra/angr can see. *)
let flow_refs (res : Recursive.result) =
  let t = Hashtbl.create 256 in
  let add target = Hashtbl.replace t target () in
  Hashtbl.iter
    (fun _ (f : Recursive.func) ->
      List.iter (fun (_, tg) -> add tg) f.calls;
      List.iter (fun (_, _, tg) -> add tg) f.all_jump_sites;
      List.iter (fun (_, tgs) -> List.iter add tgs) f.table_targets)
    res.funcs;
  t

(* Address of the function part that owns the last code byte before
   [addr], skipping backwards over padding. *)
let preceding_function loaded (res : Recursive.result) addr =
  let rec back a steps =
    if steps > 512 || a <= 0 then None
    else
      match Fetch_util.Interval_map.find res.insn_spans (a - 1) with
      | Some (lo, _, ()) -> (
          (* find the owning function *)
          let owner = ref None in
          Hashtbl.iter
            (fun e (f : Recursive.func) ->
              if List.exists (fun (blo, bhi) -> lo >= blo && lo < bhi) f.blocks
              then owner := Some e)
            res.funcs;
          match !owner with Some e -> Some e | None -> None)
      | None -> back (a - 1) (steps + 1)
  in
  ignore loaded;
  back addr 0

(** Ghidra's control-flow repairing: drop a detected start that directly
    follows (byte-adjacent, no padding) a non-returning function when no
    control flow reaches it.  With the over-approximate noreturn knowledge
    real tools have, this deletes true starts (§IV-C); size-optimized
    binaries, which drop function alignment, are hit hardest. *)
let control_flow_repair loaded (res : Recursive.result) ~noreturn starts =
  let refs = flow_refs res in
  List.filter
    (fun s ->
      Hashtbl.mem refs s
      || (not (Fetch_util.Interval_map.mem res.insn_spans (s - 1)))
      ||
      match preceding_function loaded res s with
      | Some prev -> not (noreturn prev)
      | None -> true)
    starts

(** Ghidra's thunk heuristic: a function starting with a jump is a thunk;
    its target becomes a function start (§IV-C) — wrong for rotated-loop
    entries whose first instruction jumps into their own body. *)
let thunk_targets loaded (res : Recursive.result) =
  Hashtbl.fold
    (fun entry (_ : Recursive.func) acc ->
      match Loaded.insn_at loaded entry with
      | Some ((Insn.Jmp (Insn.To_addr t) | Insn.Jmp_short (Insn.To_addr t)), _)
        ->
          t :: acc
      | _ -> acc)
    res.funcs []

(** angr's function merging: adjacent functions connected by a jump that is
    the only outgoing transfer of the first and the only incoming one of
    the second get merged — deleting true starts (§IV-C). *)
let angr_merge_removals (res : Recursive.result) =
  (* count incoming control transfers per target *)
  let incoming = Hashtbl.create 256 in
  let bump target =
    Hashtbl.replace incoming target
      (1 + Option.value ~default:0 (Hashtbl.find_opt incoming target))
  in
  Hashtbl.iter
    (fun _ (f : Recursive.func) ->
      List.iter (fun (_, t) -> bump t) f.calls;
      List.iter (fun (_, _, t) -> bump t) f.out_jumps;
      List.iter (fun (_, tgs) -> List.iter bump tgs) f.table_targets)
    res.funcs;
  let next_start entry =
    Hashtbl.fold
      (fun e _ acc ->
        if e > entry then match acc with Some a when a < e -> acc | _ -> Some e
        else acc)
      res.funcs None
  in
  Hashtbl.fold
    (fun entry (f : Recursive.func) acc ->
      match (f.out_jumps, f.calls) with
      | [ (_, _, t) ], []
        when (not f.unresolved_indirect_jump)
             && Hashtbl.find_opt incoming t = Some 1
             && next_start entry = Some t ->
          t :: acc
      | _ -> acc)
    res.funcs []

(** angr's alignment heuristic: in a padding-led gap, the first non-padding
    instruction becomes a function start (§IV-C) — right for unreferenced
    assembly functions, wrong for data-in-text junk. *)
let alignment_starts loaded (res : Recursive.result) =
  gaps loaded res
  |> List.filter_map (fun (lo, hi) ->
         let pad = Linear_sweep.leading_padding loaded ~lo ~hi in
         if pad > 0 && lo + pad < hi then Some (lo + pad) else None)

(** Prologue matching over gaps ("Fsig"). *)
let prologue_starts loaded (res : Recursive.result) ~strictness ~every_byte =
  Prologue.scan loaded ~strictness ~every_byte (gaps loaded res)

(** Heuristic tail-call splitting, angr-flavoured: a jump target inside the
    same function that is 16-byte aligned looks like a function entry and
    is split off.  Finds functions reachable only via tail calls, at the
    cost of splitting at aligned intra-function labels (§IV-D). *)
let tcall_starts_angr (res : Recursive.result) =
  Hashtbl.fold
    (fun entry (f : Recursive.func) acc ->
      List.fold_left
        (fun acc (_, _, t) ->
          if
            t <> entry && t mod 16 = 0
            && List.exists (fun (lo, hi) -> t >= lo && t < hi) f.blocks
            && not (Hashtbl.mem res.funcs t)
          then t :: acc
          else acc)
        acc f.all_jump_sites)
    res.funcs []

(** Heuristic tail-call splitting, Ghidra-flavoured: any sufficiently far
    jump (forward beyond a threshold, or backward before the entry) is
    taken as a tail call — far noisier (§IV-D). *)
let tcall_starts_ghidra (res : Recursive.result) ~threshold =
  Hashtbl.fold
    (fun entry (f : Recursive.func) acc ->
      List.fold_left
        (fun acc (site, _, t) ->
          if
            t <> entry
            && (t > site + threshold || t < entry)
            && not (Hashtbl.mem res.funcs t)
          then t :: acc
          else acc)
        acc f.all_jump_sites)
    res.funcs []

(** angr's linear gap scan: after skipping padding, every maximal decodable
    run in a gap starts a new function (§IV-D) — the heuristic that
    "eliminated all the binaries that have full accuracy". *)
let scan_starts loaded (res : Recursive.result) =
  gaps loaded res
  |> List.concat_map (fun (lo, hi) ->
         let pad = Linear_sweep.leading_padding loaded ~lo ~hi in
         let rec runs pos acc =
           if pos >= hi then List.rev acc
           else
             match Loaded.insn_at loaded pos with
             | Some (_, len) when pos + len <= hi ->
                 (* a decodable run begins here; consume it *)
                 let rec consume p =
                   if p >= hi then p
                   else
                     match Loaded.insn_at loaded p with
                     | Some (_, l) when p + l <= hi -> consume (p + l)
                     | _ -> p
                 in
                 let stop = consume pos in
                 runs (stop + 1) (pos :: acc)
             | _ -> runs (pos + 1) acc
         in
         runs (lo + pad) [])
