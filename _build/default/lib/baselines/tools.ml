(** Registry of all function-start detectors compared in Table III / V. *)

type t = {
  name : string;
  detect : Fetch_analysis.Loaded.t -> int list;
  loads : Fetch_analysis.Loaded.t -> bool;
      (** can the tool open this binary at all?  The paper reports ANGR
          failing to load 9 of the 1,352 self-built binaries (§IV-C); a
          tool that cannot load a binary detects nothing in it. *)
}

let always_loads _ = true

let fetch =
  {
    name = "FETCH";
    detect =
      (fun loaded ->
        (Fetch_core.Pipeline.run_loaded loaded).Fetch_core.Pipeline.starts);
    loads = always_loads;
  }

(* Deterministic stand-in for angr's loader failures: roughly 1 binary in
   150 (the paper's 9/1,352) trips it. *)
let angr_loads (l : Fetch_analysis.Loaded.t) =
  let text_len =
    List.fold_left
      (fun acc (s : Fetch_elf.Image.section) -> acc + String.length s.data)
      0 l.exec
  in
  Hashtbl.hash (l.image.entry, text_len) mod 150 <> 0

let ghidra =
  { name = "GHIDRA"; detect = (fun l -> Ghidra_model.detect l); loads = always_loads }

let angr =
  { name = "ANGR"; detect = (fun l -> Angr_model.detect l); loads = angr_loads }

let dyninst =
  { name = "DYNINST"; detect = Pattern_tools.Dyninst.detect; loads = always_loads }

let bap = { name = "BAP"; detect = Pattern_tools.Bap.detect; loads = always_loads }

let radare2 =
  { name = "RADARE2"; detect = Pattern_tools.Radare2.detect; loads = always_loads }

let nucleus =
  { name = "NUCLEUS"; detect = Pattern_tools.Nucleus.detect; loads = always_loads }

let ida = { name = "IDA Pro"; detect = Pattern_tools.Ida.detect; loads = always_loads }

let binja =
  { name = "BINARY NINJA"; detect = Pattern_tools.Binja.detect; loads = always_loads }

(** Table III order. *)
let all = [ dyninst; bap; radare2; nucleus; ida; binja; ghidra; angr; fetch ]
