(** Model of ANGR's CFGFast function-start strategy stack (§IV-C/D).

    FDE starts + symbols → recursive disassembly → function merging
    (default on; deletes true starts) → alignment handling (first
    non-padding instruction of padding-led gaps) → prologue matching
    (loose patterns, every byte of the gaps) → optional heuristic
    tail-call detection → optional linear gap scan. *)

open Fetch_analysis

type config = {
  recursive : bool;
  merge : bool;
  alignment : bool;
  fsig : bool;
  tcall : bool;
  scan : bool;
}

let default =
  {
    recursive = true;
    merge = true;
    alignment = true;
    fsig = true;
    tcall = false;
    scan = false;
  }

let detect ?(config = default) loaded =
  let seeds =
    loaded.Loaded.fde_starts @ loaded.Loaded.symbol_starts
    |> List.sort_uniq compare
  in
  if not config.recursive then seeds
  else begin
    let res = Recursive.run loaded ~seeds in
    let starts = Recursive.starts res in
    let starts =
      if config.merge then
        let removed = Heuristics.angr_merge_removals res in
        List.filter (fun s -> not (List.mem s removed)) starts
      else starts
    in
    let starts =
      if config.alignment then Heuristics.alignment_starts loaded res @ starts
      else starts
    in
    let starts =
      if config.fsig then
        Heuristics.prologue_starts loaded res ~strictness:Prologue.Loose
          ~every_byte:true
        @ starts
      else starts
    in
    let starts =
      if config.tcall then Heuristics.tcall_starts_angr res @ starts
      else starts
    in
    let starts =
      if config.scan then Heuristics.scan_starts loaded res @ starts
      else starts
    in
    List.sort_uniq compare starts
  end
