(** The heuristic passes existing tools layer on top of recursive
    disassembly (§II-B, §IV-C/D): control-flow repair, thunk splitting,
    function merging, alignment scanning, prologue matching, heuristic
    tail-call detection and linear gap scanning.

    Each pass takes the committed engine result and returns starts to add
    or remove; the tool models compose them per tool. *)

open Fetch_analysis

(** Unclaimed executable ranges given the engine's instruction spans. *)
val gaps : Loaded.t -> Recursive.result -> (int * int) list

(** Ghidra's control-flow repairing: drop a detected start that directly
    follows (byte-adjacent) a non-returning function when no control flow
    reaches it.  Over-approximate noreturn knowledge makes this delete
    true starts (§IV-C). *)
val control_flow_repair :
  Loaded.t -> Recursive.result -> noreturn:(int -> bool) -> int list -> int list

(** Ghidra's thunk heuristic: a function starting with a jump is a thunk;
    its target becomes a function start — wrong for rotated-loop
    entries. *)
val thunk_targets : Loaded.t -> Recursive.result -> int list

(** angr's function merging: adjacent functions connected by a sole jump
    get merged — the starts returned here are *deleted* (§IV-C). *)
val angr_merge_removals : Recursive.result -> int list

(** angr's alignment heuristic: the first non-padding instruction of each
    padding-led gap becomes a start. *)
val alignment_starts : Loaded.t -> Recursive.result -> int list

(** Prologue matching over the gaps ("Fsig"). *)
val prologue_starts :
  Loaded.t ->
  Recursive.result ->
  strictness:Prologue.strictness ->
  every_byte:bool ->
  int list

(** angr-flavoured tail-call splitting: 16-byte-aligned intra-function
    jump targets become starts. *)
val tcall_starts_angr : Recursive.result -> int list

(** Ghidra-flavoured tail-call splitting: any jump farther than
    [threshold] bytes forward (or backwards past the entry) becomes a
    start — far noisier. *)
val tcall_starts_ghidra : Recursive.result -> threshold:int -> int list

(** angr's linear gap scan: each maximal decodable run in a gap starts a
    new function. *)
val scan_starts : Loaded.t -> Recursive.result -> int list
