(** Registry of all function-start detectors compared in Table III / V. *)

type t = {
  name : string;
  detect : Fetch_analysis.Loaded.t -> int list;
  loads : Fetch_analysis.Loaded.t -> bool;
      (** can the tool open this binary at all?  The paper reports ANGR
          failing to load 9 of the 1,352 self-built binaries (§IV-C); a
          tool that cannot load a binary detects nothing in it. *)
}

val fetch : t
val ghidra : t
val angr : t
val dyninst : t
val bap : t
val radare2 : t
val nucleus : t
val ida : t
val binja : t

(** All nine, in Table III column order. *)
val all : t list
