lib/baselines/ghidra_model.ml: Fetch_analysis Hashtbl Heuristics List Loaded Prologue Recursive
