lib/baselines/heuristics.ml: Fetch_analysis Fetch_util Fetch_x86 Hashtbl Insn Linear_sweep List Loaded Option Prologue Recursive
