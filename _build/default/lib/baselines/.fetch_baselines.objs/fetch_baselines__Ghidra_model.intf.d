lib/baselines/ghidra_model.mli: Fetch_analysis
