lib/baselines/angr_model.mli: Fetch_analysis
