lib/baselines/pattern_tools.ml: Fetch_analysis Fetch_x86 Hashtbl Heuristics Linear_sweep List Loaded Prologue Recursive
