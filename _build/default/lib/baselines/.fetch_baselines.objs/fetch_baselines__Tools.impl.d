lib/baselines/tools.ml: Angr_model Fetch_analysis Fetch_core Fetch_elf Ghidra_model Hashtbl List Pattern_tools String
