lib/baselines/pattern_tools.mli: Fetch_analysis
