lib/baselines/heuristics.mli: Fetch_analysis Loaded Prologue Recursive
