lib/baselines/tools.mli: Fetch_analysis
