lib/baselines/angr_model.ml: Fetch_analysis Heuristics List Loaded Prologue Recursive
