(** Models of the six non-FDE tools in Table III.  On stripped binaries
    these seed from the program entry point (plus surviving symbols) and
    grow coverage with pattern matching — the fundamental limitation
    §II-B describes.  Each model is a named composition of engine
    configuration + heuristic passes; see the module comments in the
    implementation for the per-tool stack. *)

(** Capable recursion + iterated strict prologue matching. *)
module Dyninst : sig
  val detect : Fetch_analysis.Loaded.t -> int list
end

(** Weak recursion + BYTEWEIGHT-style loose matching everywhere: the
    false-positive champion. *)
module Bap : sig
  val detect : Fetch_analysis.Loaded.t -> int list
end

(** Conservative single-pass strict matching: lowest FP, highest FN. *)
module Radare2 : sig
  val detect : Fetch_analysis.Loaded.t -> int list
end

(** Iterated anchored matching + thunk splitting. *)
module Ida : sig
  val detect : Fetch_analysis.Loaded.t -> int list
end

(** Aggressive: loose matching + alignment + tail-call splitting. *)
module Binja : sig
  val detect : Fetch_analysis.Loaded.t -> int list
end

(** Compiler-agnostic linear sweep + control-flow grouping (§II-B): starts
    are call targets plus each connected group's lowest address. *)
module Nucleus : sig
  val detect : Fetch_analysis.Loaded.t -> int list
end
