(* Figure 1 end to end: `main` calls `div` inside a try; `div` throws when
   the divisor is zero; the unwinder must walk the stack (Figure 2, phase
   1+2), find `main`'s LSDA call site covering the call, and redirect
   execution to the landing pad — the `catch` block.

     dune exec examples/throw_catch.exe *)

open Fetch_synth.Ir

(* The running example of the paper's §II/III, in our IR. *)
let program =
  {
    funcs =
      [
        make_func ~name:"_start" [ Call "main"; Return ];
        (* div(a, b): if b == 0 throw; return a / b *)
        make_func ~name:"div" ~params:2 ~frame:(Rsp_frame 16)
          [
            If ([ Call_noreturn "cxa_throw_like" ], [ Compute 2 ]);
            Return;
          ];
        (* main: try { div(x, y) } catch { ... } *)
        make_func ~name:"main" ~params:0 ~frame:(Rsp_frame 32)
          ~saves:[ Fetch_x86.Reg.Rbx ]
          [
            Compute 2;
            Try ([ Call "div" ], [ Compute 2 ] (* the catch block *));
            Return;
          ];
        make_func ~name:"cxa_throw_like" ~params:2 ~noreturn:true
          [ Compute 1; Call_noreturn "abort_like" ];
        make_func ~name:"abort_like" ~noreturn:true [ Compute 1; Return ];
        make_func ~name:"__gxx_personality_v0" ~params:4 [ Compute 3; Return ];
      ];
    n_pointer_slots = 0;
    pointer_inits = [];
    strip_symbols = false;
    object_size = 8;
  }

let () =
  let profile = Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2 in
  let rng = Fetch_util.Prng.create 3 in
  let built = Fetch_synth.Link.build ~profile ~rng program in
  let loaded = Fetch_analysis.Loaded.load built.image in
  let fn name =
    List.find (fun (f : Fetch_synth.Truth.fn_truth) -> f.name = name)
      built.truth.fns
  in
  let div_f = fn "div" and main_f = fn "main" in

  (* Locate the throw: the call to cxa_throw_like inside div. *)
  let throw_site =
    let rec scan addr =
      if addr >= div_f.start + div_f.size then failwith "no throw site"
      else
        match Fetch_analysis.Loaded.insn_at loaded addr with
        | Some (Fetch_x86.Insn.Call (Fetch_x86.Insn.To_addr t), len)
          when t = (fn "cxa_throw_like").start ->
            addr + len (* the return address the unwinder sees *)
        | Some (_, len) -> scan (addr + len)
        | None -> failwith "decode"
    in
    scan div_f.start
  in
  Printf.printf "throw raised with return address %#x (inside div)\n" throw_site;

  (* Build the stack as it is at the throw: cxa_throw's caller is div. *)
  let mem = Hashtbl.create 16 in
  let sp = ref 0x7ffff000 in
  let push v = sp := !sp - 8; Hashtbl.replace mem !sp v in
  (* main's frame: push rbx; sub rsp, 32; then call div *)
  push 0x401005;
  (* return into _start *)
  push 0xbb;
  (* main saved rbx *)
  sp := !sp - 32;
  let call_div_ra =
    (* find main's call to div, for the return address *)
    let rec scan addr =
      if addr >= main_f.start + main_f.size then failwith "no call to div"
      else
        match Fetch_analysis.Loaded.insn_at loaded addr with
        | Some (Fetch_x86.Insn.Call (Fetch_x86.Insn.To_addr t), len)
          when t = div_f.start ->
            addr + len
        | Some (_, len) -> scan (addr + len)
        | None -> failwith "decode"
    in
    scan main_f.start
  in
  push call_div_ra;
  (* div's frame: sub rsp, 16; then the throwing call *)
  sp := !sp - 16;
  push throw_site;

  (* Phase 1+2 (Figure 2): unwind and search each frame's LSDA. *)
  let lsda_of addr =
    match Fetch_elf.Image.section built.image ".gcc_except_table" with
    | Some s when addr >= s.addr && addr < s.addr + String.length s.data -> (
        match
          Fetch_dwarf.Lsda.decode
            (String.sub s.data (addr - s.addr) (String.length s.data - (addr - s.addr)))
        with
        | Ok l -> Some l
        | Error _ -> None)
    | _ -> None
  in
  let machine =
    {
      Fetch_dwarf.Unwind.pc = throw_site - 1;
      regs = [ (Fetch_dwarf.Cfa_table.dw_rsp, !sp + 8) ];
      read_u64 = (fun a -> Hashtbl.find_opt mem a);
    }
  in
  match
    Fetch_dwarf.Unwind.find_handler loaded.oracle ~lsda_of machine ~max_frames:8
  with
  | Error _ -> failwith "unwind error"
  | Ok (frames, None) ->
      Printf.printf "no handler found after %d frames (terminate())\n"
        (List.length frames)
  | Ok (frames, Some lp) ->
      Printf.printf "unwound %d frame(s); handler (landing pad) at %#x\n"
        (List.length frames) lp;
      assert (lp > main_f.start && lp < main_f.start + main_f.size);
      Printf.printf
        "the landing pad lies inside main — the catch block of Figure 1 —\n\
         and is reachable only through the unwinder: recursive disassembly\n\
         never visits it, yet the FDE still covers it, which is why\n\
         .eh_frame is such a reliable function-extent source (SIII).\n"
