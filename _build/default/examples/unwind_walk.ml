(* The §III walkthrough: what .eh_frame is *for*.  We simulate a deep call
   chain at the moment a `throw` happens and drive the reference unwinder
   through tasks T1 (find the function), T2 (find CFA and return address)
   and T3 (restore callee-saved registers), frame by frame, exactly as
   libgcc's _Unwind_RaiseException would.

     dune exec examples/unwind_walk.exe *)

open Fetch_synth.Ir

(* main -> middle -> thrower; each with a frame, like Figure 1's div/main. *)
let program =
  {
    funcs =
      [
        make_func ~name:"_start" [ Call "main"; Return ];
        make_func ~name:"main" ~frame:(Rsp_frame 40) ~saves:[ Fetch_x86.Reg.Rbx ]
          [ Compute 2; Call "middle"; Return ];
        make_func ~name:"middle" ~frame:(Rsp_frame 24)
          ~saves:[ Fetch_x86.Reg.R12 ]
          [ Compute 2; Call "thrower"; Return ];
        make_func ~name:"thrower" ~frame:(Rsp_frame 16) [ Compute 3; Return ];
      ];
    n_pointer_slots = 0;
    pointer_inits = [];
    strip_symbols = false;
    object_size = 8;
  }

let () =
  let profile = Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2 in
  let rng = Fetch_util.Prng.create 11 in
  let built = Fetch_synth.Link.build ~profile ~rng program in
  let loaded = Fetch_analysis.Loaded.load built.image in
  let oracle = loaded.oracle in
  let fn name =
    List.find (fun (f : Fetch_synth.Truth.fn_truth) -> f.name = name)
      built.truth.fns
  in
  let name_of a =
    match
      List.find_opt
        (fun (f : Fetch_synth.Truth.fn_truth) ->
          a >= f.start && a < f.start + f.size)
        built.truth.fns
    with
    | Some f -> f.name
    | None -> "?"
  in

  (* Build the simulated stack, outermost frame first.  Each call pushes a
     return address; each prologue pushes saves and subtracts rsp.  We
     place the "throw" in the middle of thrower's body. *)
  let mem : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let sp = ref 0x7ffff000 in
  let push v =
    sp := !sp - 8;
    Hashtbl.replace mem !sp v
  in
  let simulate_call ~ret_addr = push ret_addr in
  let simulate_prologue (f : Fetch_synth.Truth.fn_truth) saved =
    (* replay the frame growth the CFI records for this function *)
    let h = ref 0 in
    List.iter
      (fun v ->
        push v;
        h := !h + 8)
      saved;
    (* remaining frame: find the function's max height from the oracle *)
    let rec probe addr best =
      if addr >= f.start + f.size then best
      else
        match Fetch_dwarf.Height_oracle.height_at oracle addr with
        | Some hh -> probe (addr + 1) (max best hh)
        | None -> probe (addr + 1) best
    in
    let target = probe f.start 0 in
    sp := !sp - (target - !h)
  in

  let main_f = fn "main" and middle_f = fn "middle" and thrower_f = fn "thrower" in
  (* _start calls main *)
  simulate_call ~ret_addr:0x401005;
  simulate_prologue main_f [ 0xbb ];
  (* main saved rbx=0xbb *)
  let ret_into_main = main_f.start + 20 in
  simulate_call ~ret_addr:ret_into_main;
  simulate_prologue middle_f [ 0xcc ];
  (* middle saved r12=0xcc *)
  let ret_into_middle = middle_f.start + 20 in
  simulate_call ~ret_addr:ret_into_middle;
  simulate_prologue thrower_f [];
  let throw_pc = thrower_f.start + thrower_f.size - 4 in

  Printf.printf "simulated throw at %#x (inside %s), rsp=%#x\n" throw_pc
    (name_of throw_pc) !sp;

  let machine =
    {
      Fetch_dwarf.Unwind.pc = throw_pc;
      regs = [ (Fetch_dwarf.Cfa_table.dw_rsp, !sp) ];
      read_u64 = (fun a -> Hashtbl.find_opt mem a);
    }
  in
  match
    Fetch_dwarf.Unwind.walk oracle machine ~max_frames:8 ~stop:(fun f ->
        name_of f.return_address = "_start")
  with
  | Error (_, frames) ->
      Printf.printf "unwind stopped after %d frames\n" (List.length frames)
  | Ok frames ->
      List.iteri
        (fun i (f : Fetch_dwarf.Unwind.frame) ->
          Printf.printf
            "frame %d: CFA=%#x, return into %s at %#x, restored regs: %s\n" i
            f.cfa (name_of f.return_address) f.return_address
            (String.concat ", "
               (List.filter_map
                  (fun (r, v) ->
                    if r = 3 then Some (Printf.sprintf "rbx=%#x" v)
                    else if r = 12 then Some (Printf.sprintf "r12=%#x" v)
                    else None)
                  f.caller_regs)))
        frames;
      Printf.printf
        "the unwinder recovered every caller and every callee-saved register\n\
         from .eh_frame alone — the same data FETCH mines for function starts.\n"
