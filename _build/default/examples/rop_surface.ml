(* The §V-A security experiment in miniature: a CFI policy that trusts all
   "function starts" as indirect-branch targets hands attackers every ROP
   gadget reachable from the FDE-introduced false starts.  Algorithm 1
   closes that surface.

     dune exec examples/rop_surface.exe *)

module IS = Set.Make (Int)

let () =
  let profile =
    Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.Ofast
  in
  (* Ofast splits the most functions, so FDEs lie the most. *)
  let spec = { Fetch_synth.Gen.default_spec with n_funcs = 150 } in
  let built = Fetch_synth.Link.build_random ~profile ~seed:1234 spec in
  let loaded = Fetch_analysis.Loaded.load built.image in
  let truth = IS.of_list (Fetch_synth.Truth.starts built.truth) in

  let fde_false_starts =
    List.filter (fun s -> not (IS.mem s truth)) loaded.fde_starts
  in
  Printf.printf "FDE false starts (cold parts of split functions): %d\n"
    (List.length fde_false_starts);

  let gadgets =
    Fetch_rop.Gadget.at_starts loaded ~depth:4 ~block_len:48 fde_false_starts
  in
  Printf.printf
    "ROP gadgets reachable from those starts under a trusting CFI policy: %d\n"
    (Fetch_rop.Gadget.count_unique gadgets);
  (match gadgets with
  | g :: _ ->
      Printf.printf "example gadget at %#x:\n" g.Fetch_rop.Gadget.addr;
      List.iter
        (fun i -> Printf.printf "    %s\n" (Fetch_x86.Insn.to_string i))
        g.insns
  | [] -> ());

  (* After Algorithm 1, the false starts are merged away. *)
  let result = Fetch_core.Pipeline.run_loaded loaded in
  let remaining =
    List.filter (fun s -> not (IS.mem s truth)) result.starts
  in
  let remaining_gadgets =
    Fetch_rop.Gadget.at_starts loaded ~depth:4 ~block_len:48 remaining
  in
  Printf.printf
    "after FETCH's FDE error fixing: %d false starts remain, exposing %d gadgets\n"
    (List.length remaining)
    (Fetch_rop.Gadget.count_unique remaining_gadgets)
