examples/throw_catch.ml: Fetch_analysis Fetch_dwarf Fetch_elf Fetch_synth Fetch_util Fetch_x86 Hashtbl List Printf String
