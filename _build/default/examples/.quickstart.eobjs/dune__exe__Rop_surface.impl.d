examples/rop_surface.ml: Fetch_analysis Fetch_core Fetch_rop Fetch_synth Fetch_x86 Int List Printf Set
