examples/quickstart.mli:
