examples/unwind_walk.ml: Fetch_analysis Fetch_dwarf Fetch_synth Fetch_util Fetch_x86 Hashtbl List Printf String
