examples/tool_comparison.ml: Fetch_analysis Fetch_baselines Fetch_synth List Printf Sys
