examples/noncontiguous.mli:
