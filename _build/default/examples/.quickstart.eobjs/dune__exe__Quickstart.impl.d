examples/quickstart.ml: Fetch_core Fetch_synth List Printf String
