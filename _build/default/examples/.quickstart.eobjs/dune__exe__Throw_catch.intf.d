examples/throw_catch.mli:
