examples/noncontiguous.ml: Fetch_analysis Fetch_core Fetch_dwarf Fetch_synth Fetch_util Fetch_x86 List Printf String
