examples/tool_comparison.mli:
