examples/rop_surface.mli:
