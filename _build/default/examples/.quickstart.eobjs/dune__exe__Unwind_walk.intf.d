examples/unwind_walk.mli:
