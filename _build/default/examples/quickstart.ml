(* Quickstart: generate a stripped binary, run FETCH, score against the
   generator's ground truth.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Build a synthetic x86-64 ELF binary: ~50 functions, gcc-style
     code shapes at -O2, stripped of symbols.  The builder also returns
     the ground-truth function list. *)
  let profile = Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2 in
  let spec = { Fetch_synth.Gen.default_spec with n_funcs = 50 } in
  let built = Fetch_synth.Link.build_random ~profile ~seed:2026 spec in
  Printf.printf "built a %d-byte ELF with %d true functions (stripped: %b)\n"
    (String.length built.raw)
    (List.length built.truth.fns)
    (built.image.symbols = []);

  (* 2. Run the FETCH pipeline straight from the ELF bytes: FDE starts ->
     safe recursive disassembly -> pointer validation -> Algorithm 1. *)
  let result =
    match Fetch_core.Pipeline.run_bytes built.raw with
    | Ok r -> r
    | Error e -> failwith e
  in
  Printf.printf "FETCH detected %d function starts\n" (List.length result.starts);

  (* 3. Score against ground truth. *)
  let truth = Fetch_synth.Truth.starts built.truth in
  let fp = List.filter (fun d -> not (List.mem d truth)) result.starts in
  let fn = List.filter (fun t -> not (List.mem t result.starts)) truth in
  Printf.printf "false positives: %d\nfalse negatives: %d\n" (List.length fp)
    (List.length fn);
  List.iter
    (fun a ->
      match Fetch_synth.Truth.find_by_addr built.truth a with
      | Some f ->
          Printf.printf "  missed %s at %#x%s%s\n" f.name a
            (if f.tail_only then " (reachable only via tail call)" else "")
            (if f.unreachable then " (unreachable)" else "")
      | None -> ())
    fn;

  (* 4. Peek at what Algorithm 1 did. *)
  match result.tailcall with
  | Some o ->
      Printf.printf "tail calls proven: %d; non-contiguous parts merged: %d\n"
        (List.length o.tail_calls) (List.length o.merges)
  | None -> ()
