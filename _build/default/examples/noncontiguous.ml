(* Walkthrough of §V: why FDEs lie about non-contiguous functions, and how
   Algorithm 1 tells a cold-part jump from a genuine tail call.

     dune exec examples/noncontiguous.exe *)

open Fetch_synth.Ir

let program =
  {
    funcs =
      [
        make_func ~name:"_start" [ Call "main"; Return ];
        make_func ~name:"main" ~frame:(Rsp_frame 24) ~saves:[ Fetch_x86.Reg.Rbx ]
          [ Call "worker"; Call "tailer"; Call "helper"; Return ];
        (* worker is split: its error path lives out of line, in a cold
           part with its own FDE — the false-positive generator *)
        make_func ~name:"worker" ~params:2 ~frame:(Rsp_frame 32)
          ~saves:[ Fetch_x86.Reg.Rbx ]
          [ Compute 4; Cold_jump [ Compute 3 ]; Compute 2; Return ];
        (* tailer ends in a true tail call to helper *)
        make_func ~name:"tailer" ~params:1 [ Compute 3; Tail_call "helper" ];
        make_func ~name:"helper" ~params:1 [ Compute 2; Return ];
      ];
    n_pointer_slots = 0;
    pointer_inits = [];
    strip_symbols = true;
    object_size = 8;
  }

let () =
  let profile = Fetch_synth.Profile.make Fetch_synth.Profile.Synthgcc Fetch_synth.Profile.O2 in
  let rng = Fetch_util.Prng.create 7 in
  let built = Fetch_synth.Link.build ~profile ~rng program in
  let name_of a =
    match Fetch_synth.Truth.find_by_addr built.truth a with
    | Some f -> f.name
    | None -> Printf.sprintf "%#x" a
  in
  (* Every FDE's PC Begin, as a naive tool would take them. *)
  let loaded = Fetch_analysis.Loaded.load built.image in
  Printf.printf "FDE PC-Begin values (naive function starts):\n";
  List.iter
    (fun s ->
      let truth = Fetch_synth.Truth.starts built.truth in
      Printf.printf "  %#x  %s%s\n" s (name_of s)
        (if List.mem s truth then "" else "   <-- FALSE POSITIVE (cold part)"))
    loaded.fde_starts;

  (* The two interesting jumps, through Algorithm 1's eyes. *)
  let result = Fetch_core.Pipeline.run_loaded loaded in
  let oracle = loaded.oracle in
  (match result.tailcall with
  | None -> ()
  | Some o ->
      Printf.printf "\nAlgorithm 1 decisions:\n";
      List.iter
        (fun (site, target) ->
          Printf.printf
            "  jmp at %#x -> %s: stack height %s = 0, target referenced elsewhere,\n\
            \      calling convention holds  => TAIL CALL (target kept as a function)\n"
            site (name_of target)
            (match Fetch_dwarf.Height_oracle.height_at oracle site with
            | Some h -> string_of_int h
            | None -> "?"))
        o.tail_calls;
      List.iter
        (fun (part, parent) ->
          Printf.printf
            "  jump into %#x from %s: stack height at the jump is nonzero\n\
            \      and %#x is referenced only by that jump  => MERGED into %s\n"
            part (name_of parent) part (name_of parent))
        o.merges);

  Printf.printf "\nfinal starts: %s\n"
    (String.concat ", " (List.map name_of result.starts));
  let truth = Fetch_synth.Truth.starts built.truth in
  assert (List.sort compare result.starts = List.sort compare truth);
  Printf.printf "== matches ground truth exactly ==\n"
