(* The `fetch` command-line tool.

   Subcommands:
     generate   build a synthetic ELF binary (plus ground-truth manifest)
     analyze    run FETCH on an ELF binary and print detected starts
     explain    replay the decision chain for one address
     disasm     linear disassembly of a binary's text section
     compare    run every tool model on a binary and score against truth
     unwind     show FDE records and CFI stack-height tables
     handlers   list LSDA call sites and landing pads
     lint       cross-layer consistency check of a FETCH run
     adversarial  per-scenario robustness eval over the adversarial corpus
     batch      run the pipeline over many binaries on a domain pool
     serve      long-running analysis daemon with a content-addressed cache *)

open Cmdliner

module IS = Set.Make (Int)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  match open_out_bin path with
  | oc ->
      output_string oc s;
      close_out oc
  | exception Sys_error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1

let load_image path =
  match Fetch_elf.Decode.decode (read_file path) with
  | Ok img -> img
  | Error e ->
      Printf.eprintf "error: %s: %s\n" path e;
      exit 1

(* ---- generate ---- *)

let generate seed n_funcs compiler opt cxx keep_symbols out truth_out =
  let compiler =
    match compiler with
    | "gcc" -> Fetch_synth.Profile.Synthgcc
    | "llvm" -> Fetch_synth.Profile.Synthllvm
    | other ->
        Printf.eprintf "unknown compiler %s (use gcc or llvm)\n" other;
        exit 1
  in
  let opt =
    match opt with
    | "O2" -> Fetch_synth.Profile.O2
    | "O3" -> Fetch_synth.Profile.O3
    | "Os" -> Fetch_synth.Profile.Os
    | "Ofast" | "Of" -> Fetch_synth.Profile.Ofast
    | other ->
        Printf.eprintf "unknown optimization level %s\n" other;
        exit 1
  in
  let profile = Fetch_synth.Profile.make compiler opt in
  let spec =
    {
      Fetch_synth.Gen.default_spec with
      n_funcs;
      cxx;
      strip = not keep_symbols;
      n_asm_called = 1;
      n_asm_tailonly = 1;
      n_asm_pointer = 1;
    }
  in
  let built = Fetch_synth.Link.build_random ~profile ~seed spec in
  write_file out built.raw;
  Printf.printf "wrote %s (%d bytes, %d functions, entry %#x)\n" out
    (String.length built.raw)
    (List.length built.truth.fns)
    built.image.entry;
  match truth_out with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 1024 in
      List.iter
        (fun (f : Fetch_synth.Truth.fn_truth) ->
          Buffer.add_string buf
            (Printf.sprintf "%#x %d %s%s%s\n" f.start f.size f.name
               (if f.is_assembly then " [asm]" else "")
               (if not f.has_fde then " [no-fde]" else "")))
        built.truth.fns;
      write_file path (Buffer.contents buf);
      Printf.printf "wrote ground truth to %s\n" path

(* ---- analyze ---- *)

let analyze path verbose stats trace_json trace_chrome provenance =
  let img = load_image path in
  let instrumented = stats || trace_json <> None || trace_chrome <> None in
  (* the ledger and the trace recorder are independent; bracket each
     only when its output was asked for *)
  let run_ledgered () =
    if provenance = None then (Fetch_core.Pipeline.run img, [])
    else Fetch_obs.Provenance.with_run (fun () -> Fetch_core.Pipeline.run img)
  in
  let (r, events), report =
    if instrumented then
      let v, rep = Fetch_obs.Trace.with_run run_ledgered in
      (v, Some rep)
    else (run_ledgered (), None)
  in
  Printf.printf "%d function starts detected:\n" (List.length r.starts);
  List.iter (fun s -> Printf.printf "  %#x\n" s) r.starts;
  (match provenance with
  | None -> ()
  | Some file ->
      write_file file (Fetch_obs.Provenance.to_json_lines events);
      Printf.printf "wrote %d provenance events to %s\n" (List.length events)
        file);
  (match report with
  | None -> ()
  | Some rep ->
      (match trace_json with
      | None -> ()
      | Some file ->
          write_file file (Fetch_obs.Report.json_lines rep);
          Printf.printf "wrote trace to %s\n" file);
      (match trace_chrome with
      | None -> ()
      | Some file ->
          write_file file (Fetch_obs.Report.chrome_trace rep);
          Printf.printf "wrote Chrome trace to %s (load in Perfetto)\n" file);
      if stats then begin
        print_newline ();
        print_string (Fetch_obs.Report.text rep);
        (* .eh_frame parse health: the paper's coverage argument only
           holds for the records we actually recovered *)
        let eh = r.eh_frame in
        Printf.printf
          "\neh_frame: %d records decoded, %d skipped, %d diagnostics\n"
          eh.records_ok eh.records_skipped
          (List.length eh.diags);
        List.iter
          (fun d ->
            Printf.printf "  %s\n" (Fetch_dwarf.Diag.to_string d))
          eh.diags;
        (* seed attribution: where the final starts came from *)
        let seed_set = IS.of_list r.final_seeds in
        let seeded = List.filter (fun s -> IS.mem s seed_set) r.starts in
        Printf.printf
          "\n%d final starts: %d from the final seed set (%d seeds: FDEs, \
           symbols, accepted pointers), %d discovered by recursion\n"
          (List.length r.starts) (List.length seeded)
          (List.length r.final_seeds)
          (List.length r.starts - List.length seeded)
      end);
  if verbose then begin
    (match r.tailcall with
    | Some o ->
        Printf.printf "\ntail calls detected: %d\n" (List.length o.tail_calls);
        List.iter
          (fun (site, t) -> Printf.printf "  jmp at %#x -> %#x\n" site t)
          o.tail_calls;
        Printf.printf "non-contiguous parts merged: %d\n" (List.length o.merges);
        List.iter
          (fun (part, parent) -> Printf.printf "  %#x merged into %#x\n" part parent)
          o.merges
    | None -> ());
    if r.invalid_fde_starts <> [] then begin
      Printf.printf "FDE starts rejected by calling-convention check:\n";
      List.iter (fun s -> Printf.printf "  %#x\n" s) r.invalid_fde_starts
    end
  end

(* ---- explain ---- *)

let explain path addr_str =
  let addr =
    (* int_of_string accepts 0x-prefixed hex and plain decimal *)
    match int_of_string_opt addr_str with
    | Some a -> a
    | None ->
        Printf.eprintf "error: bad address %S (use decimal or 0x hex)\n"
          addr_str;
        exit 2
  in
  let img = load_image path in
  let _r, events =
    Fetch_obs.Provenance.with_run (fun () -> Fetch_core.Pipeline.run img)
  in
  print_string (Fetch_obs.Provenance.explain ~addr events)

(* ---- disasm ---- *)

let disasm path =
  let img = load_image path in
  let loaded = Fetch_analysis.Loaded.load img in
  List.iter
    (fun (lo, hi) ->
      let insns, junk = Fetch_analysis.Linear_sweep.decode_range loaded ~lo ~hi in
      List.iter
        (fun (addr, _, insn) ->
          Printf.printf "%#x: %s\n" addr (Fetch_x86.Insn.to_string insn))
        insns;
      if junk <> [] then
        Printf.printf "(%d undecodable bytes skipped)\n" (List.length junk))
    (Fetch_analysis.Loaded.text_ranges loaded)

(* ---- compare ---- *)

let compare_tools path truth_path =
  let img = load_image path in
  let loaded = Fetch_analysis.Loaded.load img in
  let truth_starts =
    match truth_path with
    | Some p ->
        read_file p |> String.split_on_char '\n'
        |> List.filter_map (fun line ->
               match String.split_on_char ' ' (String.trim line) with
               | addr :: _ when addr <> "" -> int_of_string_opt addr
               | _ -> None)
    | None -> []
  in
  List.iter
    (fun (tool : Fetch_baselines.Tools.t) ->
      let detected, dt = Fetch_obs.Clock.time_s (fun () -> tool.detect loaded) in
      if truth_starts = [] then
        Printf.printf "%-14s %5d starts  (%.1f ms)\n" tool.name
          (List.length detected) (1000.0 *. dt)
      else begin
        let m = Fetch_eval.Metrics.score_lists ~truth:truth_starts ~detected in
        Printf.printf "%-14s %5d starts, FP %4d, FN %4d  (%.1f ms)\n" tool.name
          (List.length detected)
          (List.length m.fp) (List.length m.fn) (1000.0 *. dt)
      end)
    Fetch_baselines.Tools.all

(* ---- unwind ---- *)

(* Parser diagnostics (skipped/degraded records) go to stderr so the
   record dump stays machine-consumable. *)
let report_eh_diags (eh : Fetch_dwarf.Eh_frame.decoded) =
  List.iter
    (fun d -> Printf.eprintf "eh_frame: %s\n" (Fetch_dwarf.Diag.to_string d))
    eh.diags

let unwind path =
  let img = load_image path in
  let eh = Fetch_dwarf.Eh_frame.of_image img in
  report_eh_diags eh;
  let cies = eh.cies in
  List.iteri
        (fun i (cie : Fetch_dwarf.Eh_frame.cie) ->
          Printf.printf "CIE %d: code_align=%d data_align=%d ra=r%d\n" i
            cie.code_align cie.data_align cie.ra_reg;
          List.iter
            (fun (fde : Fetch_dwarf.Eh_frame.fde) ->
              Printf.printf "  FDE pc=[%#x, %#x) len=%d\n" fde.pc_begin
                (fde.pc_begin + fde.pc_range) fde.pc_range;
              match Fetch_dwarf.Cfa_table.rows ~cie fde with
              | rows ->
                  List.iter
                    (fun (r : Fetch_dwarf.Cfa_table.row) ->
                      let cfa =
                        match r.cfa with
                        | Fetch_dwarf.Cfa_table.Cfa_reg_offset (reg, o) ->
                            Printf.sprintf "r%d+%d" reg o
                        | Fetch_dwarf.Cfa_table.Cfa_expr -> "<expr>"
                      in
                      Printf.printf "    +%-4d CFA=%s%s\n" r.loc cfa
                        (match
                           Fetch_dwarf.Cfa_table.height_at rows r.loc
                         with
                        | Some h -> Printf.sprintf "  height=%d" h
                        | None -> ""))
                    rows
              | exception Fetch_dwarf.Cfa_table.Unsupported m ->
                  Printf.printf "    (unsupported CFI: %s)\n" m)
            cie.fdes)
        cies

(* ---- handlers ---- *)

let handlers path =
  let img = load_image path in
  let eh = Fetch_dwarf.Eh_frame.of_image img in
  report_eh_diags eh;
  let cies = eh.cies in
  let except = Fetch_elf.Image.section img ".gcc_except_table" in
      let lsda_of addr =
        match except with
        | Some s when addr >= s.addr && addr < s.addr + String.length s.data
          -> (
            let off = addr - s.addr in
            match
              Fetch_dwarf.Lsda.decode
                (String.sub s.data off (String.length s.data - off))
            with
            | Ok l -> Some l
            | Error _ -> None)
        | _ -> None
      in
      let any = ref false in
      List.iter
        (fun (fde : Fetch_dwarf.Eh_frame.fde) ->
          match fde.lsda with
          | None -> ()
          | Some l -> (
              match lsda_of l with
              | None -> Printf.printf "FDE %#x: unreadable LSDA at %#x\n" fde.pc_begin l
              | Some lsda ->
                  any := true;
                  Printf.printf "function %#x (LSDA %#x):\n" fde.pc_begin l;
                  List.iter
                    (fun (cs : Fetch_dwarf.Lsda.call_site) ->
                      Printf.printf
                        "  try [%#x, %#x) -> landing pad %#x (action %d)\n"
                        (fde.pc_begin + cs.cs_start)
                        (fde.pc_begin + cs.cs_start + cs.cs_len)
                        (fde.pc_begin + cs.landing_pad)
                        cs.action)
                    lsda.call_sites))
        (Fetch_dwarf.Eh_frame.all_fdes cies);
      if not !any then print_endline "(no LSDAs: not a C++-style binary)"

(* ---- lint ---- *)

let lint path json stats fail_on =
  let img = load_image path in
  let work () =
    let r = Fetch_core.Pipeline.run img in
    Fetch_core.Lint.run r
  in
  let findings, report =
    if stats then
      let f, rep = Fetch_obs.Trace.with_run work in
      (f, Some rep)
    else (work (), None)
  in
  List.iter
    (fun f ->
      print_endline
        (if json then Fetch_check.Finding.to_json f
         else Fetch_check.Finding.to_string f))
    findings;
  let errors = Fetch_check.Finding.count Error findings in
  let warnings = Fetch_check.Finding.count Warning findings in
  if not json then
    Printf.printf "%d finding%s: %d error%s, %d warning%s, %d info\n"
      (List.length findings)
      (if List.length findings = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s")
      (Fetch_check.Finding.count Info findings);
  (match report with
  | None -> ()
  | Some rep ->
      (* per-rule lint.findings.* counters plus pipeline/lint timings *)
      print_newline ();
      print_string (Fetch_obs.Report.text rep));
  let gate =
    match fail_on with
    | "never" -> false
    | "warning" -> errors + warnings > 0
    | _ -> errors > 0
  in
  if gate then exit 1

(* ---- rules: the declarative fact-base engine ---- *)

let rules_run path json stats show_facts fail_on =
  let img = load_image path in
  let work () =
    let r = Fetch_core.Pipeline.run img in
    match Fetch_core.Fact_base.of_result r with
    | Error e ->
        Printf.eprintf "error: rule program rejected: %s\n" e;
        exit 2
    | Ok engine -> (engine, Fetch_core.Fact_base.findings engine)
  in
  let (engine, findings), report =
    if stats then
      let v, rep = Fetch_obs.Trace.with_run work in
      (v, Some rep)
    else (work (), None)
  in
  List.iter
    (fun f ->
      print_endline
        (if json then Fetch_check.Finding.to_json f
         else Fetch_check.Finding.to_string f))
    findings;
  let errors = Fetch_check.Finding.count Error findings in
  let warnings = Fetch_check.Finding.count Warning findings in
  if not json then begin
    let store = Fetch_facts.Engine.store engine in
    let st = Fetch_facts.Engine.stats engine in
    Printf.printf "%d finding%s: %d error%s, %d warning%s, %d info\n"
      (List.length findings)
      (if List.length findings = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s")
      (Fetch_check.Finding.count Info findings);
    Printf.printf
      "fact base: %d tuples (%d derived), %d strata, %d rule firings\n"
      (Fetch_facts.Store.total store)
      st.derived st.strata st.firings
  end;
  if show_facts then
    Fetch_facts.Store.iter_rels (Fetch_facts.Engine.store engine) (fun rel ->
        List.iter
          (fun tup ->
            Printf.printf "%s%s\n"
              (rel : Fetch_facts.Schema.t).name
              (Fetch_facts.Fact.to_string tup))
          (Fetch_facts.Store.to_list (Fetch_facts.Engine.store engine) rel));
  (match report with
  | None -> ()
  | Some rep ->
      print_newline ();
      print_string (Fetch_obs.Report.text rep));
  let gate =
    match fail_on with
    | "never" -> false
    | "warning" -> errors + warnings > 0
    | _ -> errors > 0
  in
  if gate then exit 1

(* ---- adversarial ---- *)

let adversarial list_scenarios scale only json_out check_floors =
  if list_scenarios then begin
    List.iter
      (fun (s : Fetch_synth.Adversary.t) ->
        Printf.printf "%-16s %s\n%16s stresses: %s\n" s.id s.summary "" s.stresses)
      Fetch_synth.Adversary.all;
    exit 0
  end;
  if scale <= 0.0 || scale > 1.0 then begin
    Printf.eprintf "error: --scale %g is out of range (0, 1]\n" scale;
    exit 2
  end;
  let ids = Fetch_synth.Adversary.ids () in
  List.iter
    (fun id ->
      if not (List.mem id ids) then begin
        Printf.eprintf "error: unknown scenario %S (known: %s)\n" id
          (String.concat ", " ids);
        exit 2
      end)
    only;
  let only = if only = [] then None else Some only in
  let t = Fetch_eval.Exp_adversarial.run ~scale ?only () in
  print_string (Fetch_eval.Exp_adversarial.render t);
  (match json_out with
  | None -> ()
  | Some file ->
      write_file file (Fetch_eval.Exp_adversarial.json_lines t);
      Printf.printf "\nwrote %d rows to %s\n"
        (List.length t.Fetch_eval.Exp_adversarial.rows)
        file);
  if check_floors then begin
    match Fetch_eval.Exp_adversarial.floor_failures t with
    | [] -> Printf.printf "\nfloor gate passed: FETCH at or above every recorded floor\n"
    | fails ->
        Printf.eprintf "\nfloor gate FAILED (%d scenario%s):\n" (List.length fails)
          (if List.length fails = 1 then "" else "s");
        List.iter
          (fun (id, f1, floor) ->
            Printf.eprintf "  %s: FETCH F1 %.4f below floor %.4f\n" id f1 floor)
          fails;
        exit 1
  end

(* ---- batch ---- *)

(* An explicitly-listed path is always analyzed (failures show up as
   per-binary failure records); a directory is scanned one level deep
   for files that look like ELF, so truth manifests and reports sitting
   next to the binaries don't become noise. *)
let looks_like_elf path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      let r =
        match really_input_string ic 4 with
        | magic -> magic = "\x7fELF"
        | exception End_of_file -> false
      in
      close_in ic;
      r

let batch_files paths =
  List.concat_map
    (fun p ->
      if Sys.file_exists p && Sys.is_directory p then
        Sys.readdir p |> Array.to_list |> List.sort compare
        |> List.filter_map (fun f ->
               let full = Filename.concat p f in
               if (not (Sys.is_directory full)) && looks_like_elf full then
                 Some full
               else None)
      else [ p ])
    paths

let batch paths domains json no_timings no_lint fail_on_failure =
  let files = batch_files paths in
  if files = [] then begin
    Printf.eprintf "error: no binaries to analyze\n";
    exit 2
  end;
  let domains = if domains <= 0 then None else Some domains in
  let t =
    Fetch_core.Batch.run ?domains ~lint:(not no_lint)
      (List.map Fetch_core.Batch.item_of_file files)
  in
  print_string
    (if json then Fetch_core.Batch.json_lines ~timings:(not no_timings) t
     else Fetch_core.Batch.text t);
  if fail_on_failure && t.n_failed > 0 then exit 1

(* ---- serve ---- *)

let serve socket queue cache_mb domains max_line_kb stats_json trace_chrome =
  if queue < 1 then begin
    Printf.eprintf "error: --queue must be at least 1\n";
    exit 2
  end;
  if cache_mb < 0 then begin
    Printf.eprintf "error: --cache-mb must be non-negative\n";
    exit 2
  end;
  let engine =
    {
      Fetch_serve.Engine.default_config with
      queue_bound = queue;
      cache_bytes = cache_mb * 1024 * 1024;
      domains =
        (if domains <= 0 then Fetch_par.Pool.default_domains () else domains);
      (* per-task trace capture costs a with_run per analysis: only pay
         for it when a trace was asked for *)
      capture_reports = trace_chrome <> None;
    }
  in
  let config =
    {
      Fetch_serve.Serve.engine;
      max_line_bytes = max_line_kb * 1024;
      stats_json_path = stats_json;
      trace_chrome_path = trace_chrome;
    }
  in
  match socket with
  | Some path ->
      (* SIGINT/SIGTERM request a graceful stop so the final stats /
         trace dumps run and the socket file is removed *)
      let stop = Atomic.make false in
      let request_stop _ = Atomic.set stop true in
      (try Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
       with Invalid_argument _ | Sys_error _ -> ());
      (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
       with Invalid_argument _ | Sys_error _ -> ());
      Fetch_serve.Serve.run_socket ~config
        ~should_stop:(fun () -> Atomic.get stop)
        path
  | None -> Fetch_serve.Serve.run_stdin ~config Unix.stdin Unix.stdout

(* ---- cmdliner wiring ---- *)

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"BINARY")

let generate_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let n = Arg.(value & opt int 60 & info [ "functions" ] ~doc:"Number of functions.") in
  let compiler =
    Arg.(value & opt string "gcc" & info [ "compiler" ] ~doc:"gcc or llvm.")
  in
  let opt_level =
    Arg.(value & opt string "O2" & info [ "opt" ] ~doc:"O2, O3, Os or Ofast.")
  in
  let cxx = Arg.(value & flag & info [ "cxx" ] ~doc:"C++-style program (throw sites).") in
  let syms = Arg.(value & flag & info [ "symbols" ] ~doc:"Keep the symbol table.") in
  let out =
    Arg.(value & opt string "a.out" & info [ "o"; "output" ] ~doc:"Output path.")
  in
  let truth =
    Arg.(value & opt (some string) None & info [ "truth" ] ~doc:"Ground-truth output path.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic x86-64 ELF binary with .eh_frame")
    Term.(const generate $ seed $ n $ compiler $ opt_level $ cxx $ syms $ out $ truth)

let analyze_cmd =
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show tail calls and merges.") in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print per-stage wall-clock timings and pipeline counters.")
  in
  let trace_json =
    Arg.(value & opt (some string) None
         & info [ "trace-json" ] ~docv:"FILE"
             ~doc:"Write the pipeline trace (spans and counters) as JSON lines to $(docv).")
  in
  let trace_chrome =
    Arg.(value & opt (some string) None
         & info [ "trace-chrome" ] ~docv:"FILE"
             ~doc:"Write the pipeline trace in Chrome trace-event format to \
                   $(docv), loadable in Perfetto (ui.perfetto.dev) or \
                   chrome://tracing.")
  in
  let provenance =
    Arg.(value & opt (some string) None
         & info [ "provenance" ] ~docv:"FILE"
             ~doc:"Record the decision ledger and write it as JSON lines to \
                   $(docv): one event per candidate-start decision (seed \
                   origins, xref accept/reject with evidence, Algorithm 1 \
                   verdicts, final starts).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Detect function starts with FETCH")
    Term.(
      const analyze $ path_arg $ verbose $ stats $ trace_json $ trace_chrome
      $ provenance)

let explain_cmd =
  let addr =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"ADDR" ~doc:"Address to explain (decimal or 0x hex).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Replay the pipeline's decision chain for one address: why it was \
          (or was not) detected as a function start")
    Term.(const explain $ path_arg $ addr)

let disasm_cmd =
  Cmd.v (Cmd.info "disasm" ~doc:"Linear disassembly of the text section")
    Term.(const disasm $ path_arg)

let compare_cmd =
  let truth =
    Arg.(value & opt (some file) None & info [ "truth" ] ~doc:"Ground-truth file from generate.")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run all tool models on a binary")
    Term.(const compare_tools $ path_arg $ truth)

let unwind_cmd =
  Cmd.v
    (Cmd.info "unwind" ~doc:"Dump .eh_frame FDEs and CFI stack-height tables")
    Term.(const unwind $ path_arg)

let handlers_cmd =
  Cmd.v
    (Cmd.info "handlers" ~doc:"List LSDA call sites and landing pads")
    Term.(const handlers $ path_arg)

let lint_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit findings as JSON lines instead of text.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print per-rule finding counters and stage timings.")
  in
  let fail_on =
    Arg.(value
         & opt (enum [ ("error", "error"); ("warning", "warning"); ("never", "never") ])
             "error"
         & info [ "fail-on" ] ~docv:"SEVERITY"
             ~doc:"Exit non-zero when findings at or above $(docv) exist \
                   (error, warning or never).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Cross-check a FETCH run's layers and report inconsistencies")
    Term.(const lint $ path_arg $ json $ stats $ fail_on)

let rules_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit findings as JSON lines instead of text.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print facts.* engine counters and stage timings.")
  in
  let facts =
    Arg.(value & flag
         & info [ "facts" ]
             ~doc:"Dump every stored tuple (extensional and derived), \
                   relation by relation.")
  in
  let fail_on =
    Arg.(value
         & opt (enum [ ("error", "error"); ("warning", "warning"); ("never", "never") ])
             "error"
         & info [ "fail-on" ] ~docv:"SEVERITY"
             ~doc:"Exit non-zero when findings at or above $(docv) exist \
                   (error, warning or never).")
  in
  Cmd.v
    (Cmd.info "rules"
       ~doc:
         "Evaluate the declarative rule program (ported lint rules, \
          Algorithm 1's reference criterion, the split-function detector) \
          over a FETCH run's fact base")
    Term.(const rules_run $ path_arg $ json $ stats $ facts $ fail_on)

let adversarial_cmd =
  let list_scenarios =
    Arg.(value & flag
         & info [ "list" ] ~doc:"List the scenario catalog and exit.")
  in
  let scale =
    Arg.(value & opt float 1.0
         & info [ "scale" ] ~docv:"FRACTION"
             ~doc:"Shrink each scenario's corpus to $(docv) of the full \
                   binary count (floor one binary).")
  in
  let only =
    Arg.(value & opt_all string []
         & info [ "only" ] ~docv:"SCENARIO"
             ~doc:"Run only $(docv) (repeatable); the clean control always \
                   runs so deltas stay defined.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write one JSON object per (scenario, tool) row to $(docv).")
  in
  let check_floors =
    Arg.(value & flag
         & info [ "check-floors" ]
             ~doc:"Exit non-zero when FETCH's F1 falls below any scenario's \
                   recorded regression floor.")
  in
  Cmd.v
    (Cmd.info "adversarial"
       ~doc:
         "Score FETCH and every baseline over the adversarial scenario \
          corpus (padding pools, hand-written CFI, CET decoys, 64-bit \
          DWARF, stripped .eh_frame_hdr, overlapping FDEs) and report \
          per-scenario F1 deltas against the clean control")
    Term.(
      const adversarial $ list_scenarios $ scale $ only $ json_out
      $ check_floors)

let batch_cmd =
  let paths =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"ELF binaries, or directories scanned (one level) for ELF files.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domain count (default: the runtime's recommended count).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as JSON lines instead of text.")
  in
  let no_timings =
    Arg.(
      value & flag
      & info [ "no-timings" ]
          ~doc:
            "Omit wall-clock, stage-timing and domain-count fields so the \
             report is a deterministic function of the inputs (byte-identical \
             across domain counts).")
  in
  let no_lint =
    Arg.(
      value & flag
      & info [ "no-lint" ] ~doc:"Skip the per-binary cross-layer lint.")
  in
  let fail_on_failure =
    Arg.(
      value & flag
      & info [ "fail-on-failure" ]
          ~doc:"Exit non-zero when any binary's analysis failed.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze many binaries concurrently on a fixed-size domain pool; a \
          failure on one binary becomes a structured record, never aborting \
          the batch")
    Term.(
      const batch $ paths $ domains $ json $ no_timings $ no_lint
      $ fail_on_failure)

let serve_cmd =
  let socket =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv), serving connections \
             one at a time, instead of serving stdin/stdout.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Maximum in-flight analyses; past it new requests are shed with \
             a structured overloaded error.")
  in
  let cache_mb =
    Arg.(
      value & opt int 64
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:"Content-addressed result cache byte budget (LRU eviction).")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domain count (default: the runtime's recommended count).")
  in
  let max_line_kb =
    Arg.(
      value & opt int (64 * 1024)
      & info [ "max-line-kb" ] ~docv:"KB"
          ~doc:
            "Longest accepted request line; longer lines are discarded up \
             to the next newline and answered with bad_request.")
  in
  let stats_json =
    Arg.(
      value & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Write the final serve.* stats JSON to $(docv) on exit.")
  in
  let trace_chrome =
    Arg.(
      value & opt (some string) None
      & info [ "trace-chrome" ] ~docv:"FILE"
          ~doc:
            "Capture per-request pipeline traces and write the merged \
             Chrome trace to $(docv) on exit (cache hits record no \
             pipeline spans).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running analysis daemon: JSON-lines requests over stdin or a \
          Unix-domain socket, responses streamed back in request order, \
          repeated binaries answered from a content-addressed cache")
    Term.(
      const serve $ socket $ queue $ cache_mb $ domains $ max_line_kb
      $ stats_json $ trace_chrome)

let () =
  let doc = "function detection with exception handling information" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "fetch" ~doc)
          [
            generate_cmd; analyze_cmd; explain_cmd; disasm_cmd; compare_cmd;
            unwind_cmd; handlers_cmd; lint_cmd; rules_cmd; adversarial_cmd;
            batch_cmd; serve_cmd;
          ]))
