(* The Table III scenario in miniature: one stripped binary, every tool
   model, scored against ground truth.

     dune exec examples/tool_comparison.exe *)

let () =
  let profile =
    Fetch_synth.Profile.make Fetch_synth.Profile.Synthllvm Fetch_synth.Profile.O3
  in
  let spec =
    {
      Fetch_synth.Gen.default_spec with
      n_funcs = 120;
      n_asm_called = 1;
      n_asm_tailonly = 1;
      n_asm_pointer = 1;
      cxx = true;
    }
  in
  let built = Fetch_synth.Link.build_random ~profile ~seed:99 spec in
  let loaded = Fetch_analysis.Loaded.load built.image in
  let truth = Fetch_synth.Truth.starts built.truth in
  Printf.printf
    "stripped llvm -O3 binary: %d true functions, %d with FDEs\n\n"
    (List.length truth)
    (Fetch_synth.Truth.count_if (fun f -> f.has_fde) built.truth);
  Printf.printf "%-14s %9s %6s %6s %9s\n" "tool" "detected" "FP" "FN" "time(ms)";
  List.iter
    (fun (tool : Fetch_baselines.Tools.t) ->
      let detected, secs = Fetch_obs.Clock.time_s (fun () -> tool.detect loaded) in
      let dt = 1000.0 *. secs in
      let fp = List.filter (fun d -> not (List.mem d truth)) detected in
      let fn = List.filter (fun t -> not (List.mem t detected)) truth in
      Printf.printf "%-14s %9d %6d %6d %9.1f\n" tool.name (List.length detected)
        (List.length fp) (List.length fn) dt)
    Fetch_baselines.Tools.all;
  Printf.printf
    "\nThe FDE-equipped strategies win because call frames name nearly every\n\
     function directly; the pattern-driven tools must guess (SII-B).\n"
