let () =
  (* 4-byte 0xffffffff marker, then len64 whose Int64.to_int = -12:
     0x7FFF_FFFF_FFFF_FFF4 (positive as Int64) *)
  let b = Buffer.create 16 in
  Buffer.add_string b "\xff\xff\xff\xff";
  Buffer.add_string b "\xf4\xff\xff\xff\xff\xff\xff\x7f";
  let data = Buffer.contents b in
  Printf.printf "len64 to_int = %d\n%!" (Int64.to_int 0x7FFFFFFFFFFFFFF4L);
  let d = Fetch_dwarf.Eh_frame.decode ~addr:0 data in
  Printf.printf "done: ok=%d skipped=%d diags=%d\n" d.records_ok d.records_skipped (List.length d.diags)
